/**
 * @file
 * Unit tests for the perfcmp comparison engine (tools/perfcmp_core.hh):
 * BENCH json parsing, per-label median reduction across a side's files,
 * and compare()'s pairing — including the missing/added label
 * accounting that fail-on-regression gates on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "tools/perfcmp_core.hh"

namespace mpc::perfcmp
{
namespace
{

std::string
benchJson(const std::vector<Row> &rows)
{
    std::string text = "{\n  \"runs\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "    {\"label\": \"%s\", \"wallSeconds\": %g}%s\n",
                      rows[i].label.c_str(), rows[i].wallSeconds,
                      i + 1 < rows.size() ? "," : "");
        text += buf;
    }
    text += "  ]\n}\n";
    return text;
}

/** Write a BENCH-shaped file into the test temp dir; returns its path. */
std::string
writeBench(const std::string &name, const std::vector<Row> &rows)
{
    const std::string path =
        testing::TempDir() + "perfcmp_" + name + ".json";
    std::ofstream out(path);
    out << benchJson(rows);
    return path;
}

TEST(PerfcmpParse, ReadsLabelsAndWallSeconds)
{
    std::vector<Row> rows;
    ASSERT_TRUE(parseBenchText(
        benchJson({{"em3d", 1.5}, {"fft", 0.25}}), "inline", rows));
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].label, "em3d");
    EXPECT_DOUBLE_EQ(rows[0].wallSeconds, 1.5);
    EXPECT_EQ(rows[1].label, "fft");
    EXPECT_DOUBLE_EQ(rows[1].wallSeconds, 0.25);
}

TEST(PerfcmpParse, RejectsMissingRunsAndMissingWallSeconds)
{
    std::vector<Row> rows;
    EXPECT_FALSE(parseBenchText("{\"notRuns\": []}", "inline", rows));
    rows.clear();
    EXPECT_FALSE(parseBenchText(
        "{\"runs\": [{\"label\": \"x\"}]}", "inline", rows));
    rows.clear();
    EXPECT_FALSE(parseBenchText("{\"runs\": []}", "inline", rows));
}

TEST(PerfcmpLoad, MedianAcrossFilesOddAndEven)
{
    const auto a = writeBench("med_a", {{"em3d", 1.0}, {"fft", 4.0}});
    const auto b = writeBench("med_b", {{"em3d", 3.0}, {"fft", 2.0}});
    const auto c = writeBench("med_c", {{"em3d", 100.0}, {"fft", 6.0}});

    std::map<std::string, double> two;
    ASSERT_TRUE(loadSide(a + "," + b, two));
    EXPECT_DOUBLE_EQ(two.at("em3d"), 2.0);   // even: mean of middle two
    EXPECT_DOUBLE_EQ(two.at("fft"), 3.0);

    std::map<std::string, double> three;
    ASSERT_TRUE(loadSide(a + "," + b + "," + c, three));
    EXPECT_DOUBLE_EQ(three.at("em3d"), 3.0); // odd: middle sample
    EXPECT_DOUBLE_EQ(three.at("fft"), 4.0);
}

TEST(PerfcmpLoad, DropsLabelAbsentFromSomeFileOfTheSide)
{
    const auto a = writeBench("part_a", {{"em3d", 1.0}, {"fft", 2.0}});
    const auto b = writeBench("part_b", {{"em3d", 3.0}});
    std::map<std::string, double> medians;
    ASSERT_TRUE(loadSide(a + "," + b, medians));
    EXPECT_EQ(medians.count("em3d"), 1u);
    EXPECT_EQ(medians.count("fft"), 0u);
}

TEST(PerfcmpCompare, FlagsRegressionsAndComputesGeomean)
{
    const std::map<std::string, double> base{{"a", 1.0}, {"b", 2.0}};
    const std::map<std::string, double> next{{"a", 2.0}, {"b", 1.0}};
    const CompareResult r = compare(base, next, 5.0);
    ASSERT_EQ(r.compared, 2);
    EXPECT_TRUE(r.missing.empty());
    EXPECT_TRUE(r.added.empty());
    EXPECT_EQ(r.regressions, 1);
    EXPECT_DOUBLE_EQ(r.rows[0].speedup, 0.5);
    EXPECT_TRUE(r.rows[0].regression);
    EXPECT_DOUBLE_EQ(r.rows[1].speedup, 2.0);
    EXPECT_TRUE(r.rows[1].faster);
    EXPECT_NEAR(r.geomean, 1.0, 1e-12);     // sqrt(0.5 * 2.0)
}

TEST(PerfcmpCompare, ThresholdSuppressesSmallDeltas)
{
    const std::map<std::string, double> base{{"a", 1.00}};
    const std::map<std::string, double> next{{"a", 1.03}};
    const CompareResult r = compare(base, next, 5.0);
    ASSERT_EQ(r.compared, 1);
    EXPECT_EQ(r.regressions, 0);
    EXPECT_FALSE(r.rows[0].regression);
    EXPECT_FALSE(r.rows[0].faster);
}

TEST(PerfcmpCompare, ReportsMissingAndAddedLabelsExplicitly)
{
    const std::map<std::string, double> base{
        {"kept", 1.0}, {"vanished", 1.0}, {"gone_too", 2.0}};
    const std::map<std::string, double> next{
        {"kept", 1.0}, {"brand_new", 3.0}};
    const CompareResult r = compare(base, next, 5.0);
    EXPECT_EQ(r.compared, 1);
    ASSERT_EQ(r.missing.size(), 2u);
    EXPECT_EQ(r.missing[0], "gone_too");
    EXPECT_EQ(r.missing[1], "vanished");
    ASSERT_EQ(r.added.size(), 1u);
    EXPECT_EQ(r.added[0], "brand_new");
    // A vanished label fails fail-on-regression even with 0 slowdowns.
    EXPECT_EQ(r.regressions, 0);
    EXPECT_TRUE(r.regressions > 0 || !r.missing.empty());
}

TEST(PerfcmpCompare, SubResolutionRowsAreSkippedNotMissing)
{
    const std::map<std::string, double> base{{"a", 0.0}, {"b", 1.0}};
    const std::map<std::string, double> next{{"a", 1.0}, {"b", 1.0}};
    const CompareResult r = compare(base, next, 5.0);
    EXPECT_EQ(r.compared, 1);       // only "b" carries signal
    EXPECT_TRUE(r.missing.empty()); // "a" exists on both sides
    EXPECT_TRUE(r.added.empty());
}

TEST(PerfcmpJson, RendersRowsVerdictsAndLabelLists)
{
    const std::map<std::string, double> base{
        {"a", 1.0}, {"b", 2.0}, {"vanished", 1.0}};
    const std::map<std::string, double> next{
        {"a", 2.0}, {"b", 1.0}, {"brand_new", 3.0}};
    const CompareResult r = compare(base, next, 5.0);
    const std::string json = compareJson(r, 5.0);

    EXPECT_NE(json.find("\"schema\": \"perfcmp-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"compared\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"regressions\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"a\""), std::string::npos);
    EXPECT_NE(json.find("\"verdict\": \"regression\""),
              std::string::npos);
    EXPECT_NE(json.find("\"verdict\": \"faster\""), std::string::npos);
    EXPECT_NE(json.find("\"missing\": [\"vanished\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"added\": [\"brand_new\"]"),
              std::string::npos);
    // Every row renders a speedup ratio for trending.
    EXPECT_NE(json.find("\"speedup\": 0.500000"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\": 2.000000"), std::string::npos);
}

TEST(PerfcmpJson, EscapesLabelsAndHandlesEmptyResult)
{
    CompareResult r;
    CompareRow row;
    row.label = "odd \"label\"\\path";
    row.baseSeconds = 1.0;
    row.newSeconds = 1.0;
    row.speedup = 1.0;
    r.rows.push_back(row);
    r.compared = 1;
    const std::string json = compareJson(r, 10.0);
    EXPECT_NE(json.find("odd \\\"label\\\"\\\\path"),
              std::string::npos);

    const CompareResult empty;
    const std::string ej = compareJson(empty, 10.0);
    EXPECT_NE(ej.find("\"rows\": []"), std::string::npos);
    EXPECT_NE(ej.find("\"missing\": []"), std::string::npos);
}

} // namespace
} // namespace mpc::perfcmp
