/**
 * @file
 * Hot-path memory-discipline tests: the pooled Continuation type, the
 * open-addressed/dense flat maps, the predecode sidecar, and the
 * zero-allocation steady-state guarantee of the miss lifecycle
 * (alloc -> coalesce -> fill -> retire), asserted with a counting
 * global allocator.
 */

#include <cstdlib>
#include <new>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/continuation.hh"
#include "common/flatmap.hh"
#include "kisa/interp.hh"
#include "kisa/program.hh"
#include "mem/cache.hh"
#include "mem/eventq.hh"
#include "mem/mainmem.hh"

// ---------------------------------------------------------------------
// Counting allocator: every heap trip in this binary bumps the counter.
// ---------------------------------------------------------------------

namespace
{
std::uint64_t g_heapAllocs = 0;
}

// GCC pairs the default operator new contract with std::free and warns
// at every call site; the replacement below really is malloc-backed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace mpc
{
namespace
{

// ---------------------------------------------------------------------
// Continuation storage discipline
// ---------------------------------------------------------------------

struct SmallCapture
{
    std::uint64_t *sink;
    void operator()(Tick now) { *sink += now; }
};

struct BigCapture
{
    std::uint64_t payload[4];
    std::uint64_t *sink;
    void operator()(Tick now) { *sink += now + payload[0]; }
};

static_assert(Continuation::storedInline<SmallCapture>,
              "pointer-sized captures must be inline");
static_assert(!Continuation::storedInline<BigCapture>,
              "captures beyond inlineBytes must be pooled");
static_assert(sizeof(Continuation) <= 48,
              "Continuation must fit the event queue inline buffer "
              "alongside a Tick");

TEST(Continuation, InvokesTickAndVoidCallables)
{
    std::uint64_t sum = 0;
    Continuation with_tick([&sum](Tick now) { sum += now; });
    Continuation without_tick([&sum] { sum += 1000; });
    with_tick(7);
    without_tick(0);
    EXPECT_EQ(sum, 1007u);
}

TEST(Continuation, EmptyAndMoveSemantics)
{
    Continuation empty;
    EXPECT_FALSE(static_cast<bool>(empty));

    std::uint64_t sum = 0;
    Continuation a(SmallCapture{&sum});
    EXPECT_TRUE(static_cast<bool>(a));
    Continuation b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b(5);
    EXPECT_EQ(sum, 5u);

    Continuation c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c(3);
    EXPECT_EQ(sum, 8u);
}

TEST(Continuation, InlineCapturesNeverTouchThePool)
{
    const auto before = Continuation::poolCounters().totalAllocs;
    std::uint64_t sum = 0;
    for (int i = 0; i < 100; ++i) {
        Continuation fn(SmallCapture{&sum});
        fn(1);
    }
    EXPECT_EQ(Continuation::poolCounters().totalAllocs, before);
    EXPECT_EQ(sum, 100u);
}

TEST(Continuation, PooledBlocksRecycleThroughTheFreeList)
{
    using detail::ContinuationPool;
    std::uint64_t sum = 0;

    // Hold more pooled continuations than one chunk provides, forcing
    // at least one chunk allocation, then release them all.
    const auto c0 = Continuation::poolCounters();
    {
        std::vector<Continuation> held;
        for (std::size_t i = 0; i < ContinuationPool::blocksPerChunk + 8;
             ++i)
            held.emplace_back(BigCapture{{i, 0, 0, 0}, &sum});
        const auto &mid = Continuation::poolCounters();
        EXPECT_EQ(mid.blocksInUse,
                  c0.blocksInUse + ContinuationPool::blocksPerChunk + 8);
        EXPECT_GT(mid.chunkAllocs, c0.chunkAllocs);
        for (auto &fn : held)
            fn(1);
    }
    const auto c1 = Continuation::poolCounters();
    EXPECT_EQ(c1.blocksInUse, c0.blocksInUse);
    EXPECT_GE(c1.blocksFree, ContinuationPool::blocksPerChunk + 8);

    // Exhaust-and-reuse oracle: the same burst again must be served
    // entirely from the free list — no further chunk allocations.
    {
        std::vector<Continuation> held;
        for (std::size_t i = 0; i < ContinuationPool::blocksPerChunk + 8;
             ++i)
            held.emplace_back(BigCapture{{i, 0, 0, 0}, &sum});
        EXPECT_EQ(Continuation::poolCounters().chunkAllocs,
                  c1.chunkAllocs);
    }
    EXPECT_EQ(Continuation::poolCounters().blocksInUse, c0.blocksInUse);
}

TEST(Continuation, ResetReleasesThePoolBlock)
{
    std::uint64_t sum = 0;
    const auto before = Continuation::poolCounters().blocksInUse;
    Continuation fn(BigCapture{{1, 2, 3, 4}, &sum});
    EXPECT_EQ(Continuation::poolCounters().blocksInUse, before + 1);
    fn.reset();
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(Continuation::poolCounters().blocksInUse, before);
}

// ---------------------------------------------------------------------
// FlatAddrMap / DenseRefMap
// ---------------------------------------------------------------------

TEST(FlatAddrMap, BasicInsertFindGrow)
{
    FlatAddrMap<int> map(8);
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(0x40), nullptr);
    map[0x40] = 7;
    map[0x80] = 9;
    ASSERT_NE(map.find(0x40), nullptr);
    EXPECT_EQ(*map.find(0x40), 7);
    EXPECT_EQ(map.size(), 2u);

    // Push well past the initial 8 slots to force several growths.
    // 0x40/0x80 are lines 1 and 2, so they are overwritten, not added.
    for (Addr a = 1; a <= 500; ++a)
        map[a * 64] = static_cast<int>(a);
    EXPECT_EQ(map.size(), 500u);
    for (Addr a = 1; a <= 500; ++a) {
        ASSERT_NE(map.find(a * 64), nullptr) << a;
        EXPECT_EQ(*map.find(a * 64), static_cast<int>(a));
    }
}

/** Differential oracle: randomized directory-style traffic (line
 *  addresses from a few block-placed regions plus interleaved strides,
 *  mixed lookups and inserts) against std::unordered_map. */
TEST(FlatAddrMap, MatchesUnorderedMapOnRandomizedDirectoryTraffic)
{
    struct Entry
    {
        int state = 0;
        std::uint64_t sharers = 0;
    };
    FlatAddrMap<Entry> flat;
    std::unordered_map<Addr, Entry> oracle;

    std::mt19937_64 rng(0x5eed);
    const Addr regions[] = {0x100000, 0x400000, 0x10000000};
    for (int step = 0; step < 200000; ++step) {
        const Addr base = regions[rng() % 3];
        const Addr line = base + (rng() % 4096) * 64;
        if (rng() % 4 == 0) {
            // Read-only lookup: both sides must agree on presence.
            const auto it = oracle.find(line);
            const Entry *found = flat.find(line);
            ASSERT_EQ(found != nullptr, it != oracle.end()) << line;
            if (found != nullptr) {
                EXPECT_EQ(found->state, it->second.state);
                EXPECT_EQ(found->sharers, it->second.sharers);
            }
        } else {
            // Mutating access (directory entry() pattern).
            Entry &a = flat[line];
            Entry &b = oracle[line];
            a.state = b.state = static_cast<int>(rng() % 3);
            const std::uint64_t bit = 1ull << (rng() % 16);
            a.sharers |= bit;
            b.sharers |= bit;
        }
    }
    ASSERT_EQ(flat.size(), oracle.size());
    std::size_t visited = 0;
    flat.forEach([&](Addr key, const Entry &value) {
        const auto it = oracle.find(key);
        ASSERT_NE(it, oracle.end()) << key;
        EXPECT_EQ(value.state, it->second.state);
        EXPECT_EQ(value.sharers, it->second.sharers);
        ++visited;
    });
    EXPECT_EQ(visited, oracle.size());
}

TEST(DenseRefMap, InsertContainsIterateSorted)
{
    DenseRefMap<int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_FALSE(map.contains(3));
    map[5] = 50;
    map[1] = 10;
    map[9] = 90;
    EXPECT_EQ(map.size(), 3u);
    EXPECT_TRUE(map.contains(5));
    EXPECT_FALSE(map.contains(0));
    EXPECT_FALSE(map.contains(2));
    EXPECT_EQ(map.at(1), 10);
    ASSERT_NE(map.find(9), nullptr);
    EXPECT_EQ(*map.find(9), 90);

    // Iteration is ascending by id regardless of insertion order — the
    // property report rendering relies on for determinism.
    std::vector<std::uint32_t> ids;
    map.forEach([&](std::uint32_t id, const int &) { ids.push_back(id); });
    EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 5, 9}));

    map[1] = 11;    // update, not a new entry
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.at(1), 11);
}

// ---------------------------------------------------------------------
// Predecode sidecar
// ---------------------------------------------------------------------

/** A kernel touching every metadata class: int/fp arithmetic, loads,
 *  stores, prefetch, branches, moves. */
kisa::Program
metaProgram()
{
    using namespace kisa;
    AsmBuilder b("meta");
    const Reg r_i = 1, r_n = 2, r_base = 3;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, 8);
    b.iLoadImm(r_base, 0x100000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(10, r_base, 0, /*ref_id=*/0);
    b.fAdd(11, 11, 10);
    b.fMul(12, 11, 10);
    b.cvtIF(13, r_i);
    b.stF(r_base, 8, 11, /*ref_id=*/1);
    b.ldI(4, r_base, 16, /*ref_id=*/2);
    b.iAdd(5, 5, 4);
    b.stI(r_base, 24, 5, /*ref_id=*/3);
    Instr prefetch;
    prefetch.op = Op::Prefetch;
    prefetch.ra = r_base;
    prefetch.imm = 64;
    b.emit(prefetch);
    b.iAddImm(r_base, r_base, 64);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    return b.finish();
}

TEST(Predecode, SidecarMatchesOpcodeHelpers)
{
    const auto program = metaProgram();
    ASSERT_EQ(program.meta.size(), program.code.size());
    for (size_t i = 0; i < program.code.size(); ++i) {
        const kisa::Instr &in = program.code[i];
        const kisa::InstrMeta &m = program.meta[i];
        EXPECT_EQ(m.cls, kisa::opClass(in.op)) << i;
        EXPECT_EQ(m.isMem, kisa::isMemOp(in.op)) << i;
        EXPECT_EQ(m.isBranch, kisa::isBranch(in.op)) << i;
        EXPECT_EQ(m.destFp, kisa::destIsFp(in.op)) << i;
        EXPECT_EQ(m.srcAFp, kisa::srcAIsFp(in.op)) << i;
        EXPECT_EQ(m.srcBFp, kisa::srcBIsFp(in.op)) << i;
        EXPECT_EQ(m, kisa::deriveMeta(in)) << i;
    }
}

/** The sidecar must agree with what step() — the single semantic
 *  definition — actually does, instruction by dynamic instruction. */
TEST(Predecode, SidecarMatchesStepResults)
{
    const auto program = metaProgram();
    kisa::MemoryImage mem;
    kisa::RegFile regs;
    int pc = 0;
    std::uint64_t steps = 0;
    for (;;) {
        const kisa::InstrMeta &m = program.meta[static_cast<size_t>(pc)];
        const auto res = kisa::step(program, pc, regs, mem);
        EXPECT_EQ(m.isMem, res.isMem) << "pc " << pc;
        if (res.isMem) {
            // A memory op is a read exactly when predecode classified
            // it MemRead (loads and nonbinding prefetches).
            EXPECT_EQ(m.cls == kisa::OpClass::MemRead, res.isLoad)
                << "pc " << pc;
        }
        if (!m.isBranch) {
            EXPECT_FALSE(res.branchTaken) << "pc " << pc;
        }
        pc = res.nextPc;
        if (res.halted)
            break;
        ASSERT_LT(++steps, 10000u) << "runaway program";
    }
    EXPECT_GT(steps, 50u);
}

// ---------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------

/** Drive one full miss lifecycle (access, downstream fetch, fill,
 *  completion) per address through a cache over main memory. */
std::uint64_t
runMissRound(mem::EventQueue &eq, mem::Cache &cache, int misses)
{
    std::uint64_t completions = 0;
    for (int i = 0; i < misses; ++i) {
        // Two loads to the same line (second coalesces) plus a write to
        // the next line: exercises allocate, coalesce, fill and the
        // write-allocate path every iteration.
        const Addr addr = 0x100000 + static_cast<Addr>(i) * 128;
        const auto status = cache.loadAccess(
            addr, 0, [&completions](Tick) { ++completions; });
        EXPECT_EQ(status, mem::Cache::Status::Ok);
        const auto coalesced = cache.loadAccess(
            addr + 8, 0, [&completions](Tick) { ++completions; });
        EXPECT_EQ(coalesced, mem::Cache::Status::Ok);
        const auto wrote = cache.writeAccess(
            addr + 64, 1, [&completions](Tick) { ++completions; });
        EXPECT_EQ(wrote, mem::Cache::Status::Ok);
        while (!eq.empty())
            eq.advanceTo(eq.nextEventTick());
    }
    return completions;
}

TEST(ZeroAlloc, SteadyStateMissLifecycleNeverTouchesTheHeap)
{
    mem::EventQueue eq;
    mem::CacheConfig cfg;
    cfg.sizeBytes = 8 * 1024;   // 128 lines: every round evicts
    cfg.numMshrs = 8;
    cfg.numPorts = 4;           // three same-cycle accesses per round
    mem::Cache cache(eq, cfg, false, true);
    mem::MemBusConfig bus;
    mem::MainMemory mm(eq, bus, cfg.lineBytes);
    cache.setDownstream(&mm);

    // Warm-up: populate the continuation pool, the event queue's node
    // pool and wheel chunks, and circulate MSHR target capacity.
    const auto warm = runMissRound(eq, cache, 400);
    EXPECT_EQ(warm, 3u * 400u);

    // Steady state: identical traffic must perform ZERO heap
    // allocations — the acceptance bar for the pooled hot path.
    const std::uint64_t before = g_heapAllocs;
    const auto steady = runMissRound(eq, cache, 400);
    const std::uint64_t after = g_heapAllocs;
    EXPECT_EQ(steady, 3u * 400u);
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations in steady state";

    EXPECT_GT(cache.stats().loadMisses, 0u);
    EXPECT_GT(cache.stats().loadCoalesced, 0u);
    EXPECT_GT(cache.stats().writebacks, 0u);
}

} // namespace
} // namespace mpc
