/**
 * @file
 * Differential tests for the threaded-code execution tier: randomized
 * KISA programs and hand-built corner cases run on both backends
 * (step()-interpreter and ThreadedExecutor), asserting bit-identical
 * register files, memory contents, instruction counts, and memory-hook
 * access streams. Also covers MPC_EXEC_TIER selection, the trap
 * fallback (forged opcodes, out-of-range branch targets), the
 * superinstruction peephole (including branching into the middle of a
 * fused sequence), and the instruction-budget guard.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <random>
#include <set>
#include <vector>

#include "kisa/exec_threaded.hh"
#include "kisa/interp.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"

namespace mpc::kisa
{
namespace
{

/** One recorded memory-hook callback. */
struct Access
{
    int core;
    std::int32_t pc;    ///< source-instruction identity via refId slot
    Addr addr;
    bool isLoad;

    bool
    operator==(const Access &other) const
    {
        return core == other.core && pc == other.pc &&
               addr == other.addr && isLoad == other.isLoad;
    }
};

/** Everything a tier produces that the other tier must reproduce. */
struct RunResult
{
    std::uint64_t totalInstrs = 0;
    std::vector<RegFile> regs;
    std::vector<std::uint64_t> memProbe;    ///< words at touched addrs
    std::vector<Access> accesses;
};

/** Run @p programs on @p tier from zeroed registers and @p mem. */
RunResult
runTier(const std::vector<Program> &programs, MemoryImage &mem,
        ExecTier tier, std::uint64_t max_steps = 1ull << 24)
{
    RunResult out;
    auto hook = [&](int core, const Instr &instr, Addr addr,
                    bool is_load) {
        out.accesses.push_back(
            Access{core, static_cast<std::int32_t>(instr.refId), addr,
                   is_load});
    };
    if (tier == ExecTier::Interp) {
        Interpreter interp(mem);
        for (const Program &p : programs)
            interp.addCore(p);
        out.totalInstrs = interp.runWithHook(hook, max_steps);
        for (std::size_t c = 0; c < programs.size(); ++c)
            out.regs.push_back(interp.regs(static_cast<int>(c)));
    } else {
        ThreadedExecutor exec(mem);
        for (const Program &p : programs)
            exec.addCore(p);
        out.totalInstrs = exec.runWithHook(hook, max_steps);
        for (std::size_t c = 0; c < programs.size(); ++c)
            out.regs.push_back(exec.regs(static_cast<int>(c)));
    }
    std::set<Addr> touched;
    for (const Access &access : out.accesses)
        touched.insert(access.addr);
    for (Addr addr : touched)
        out.memProbe.push_back(mem.ld64(addr));
    return out;
}

/** Bitwise register-file equality (doubles compared as bit patterns,
 *  so NaNs and signed zeros must match exactly too). */
void
expectRegsEqual(const RegFile &a, const RegFile &b)
{
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(a.intRegs[r], b.intRegs[r]) << "int reg " << r;
    for (int r = 0; r < numFpRegs; ++r)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fpRegs[r]),
                  std::bit_cast<std::uint64_t>(b.fpRegs[r]))
            << "fp reg " << r;
}

/** Run on both tiers (fresh memory each) and assert equivalence. */
void
expectTiersAgree(const std::vector<Program> &programs,
                 std::uint64_t max_steps = 1ull << 24)
{
    MemoryImage mem_interp;
    MemoryImage mem_threaded;
    const RunResult interp =
        runTier(programs, mem_interp, ExecTier::Interp, max_steps);
    const RunResult threaded =
        runTier(programs, mem_threaded, ExecTier::Threaded, max_steps);
    EXPECT_EQ(interp.totalInstrs, threaded.totalInstrs);
    ASSERT_EQ(interp.regs.size(), threaded.regs.size());
    for (std::size_t c = 0; c < interp.regs.size(); ++c)
        expectRegsEqual(interp.regs[c], threaded.regs[c]);
    EXPECT_EQ(interp.accesses.size(), threaded.accesses.size());
    for (std::size_t i = 0;
         i < std::min(interp.accesses.size(), threaded.accesses.size());
         ++i)
        EXPECT_TRUE(interp.accesses[i] == threaded.accesses[i])
            << "access " << i;
    EXPECT_EQ(interp.memProbe, threaded.memProbe);
}

// --- randomized differential fuzz ------------------------------------

/** Base address loaded into r0; memory ops displace within one page. */
constexpr std::int64_t fuzzBase = 0x10000;

/**
 * Append one random instruction. Register 0 holds the memory base and
 * is never a destination; branches are forward-only so every program
 * terminates. FlagWait is excluded (it can block forever on random
 * state) and exercised by the dedicated multi-core test instead.
 */
void
appendRandom(std::mt19937 &rng, Program &prog, std::uint32_t &ref_id)
{
    static const Op pool[] = {
        Op::Nop,    Op::IAdd,    Op::ISub,     Op::IMul,  Op::IDiv,
        Op::IRem,   Op::IAnd,    Op::IOr,      Op::IXor,  Op::IShl,
        Op::IShr,   Op::ICmpLt,  Op::ICmpEq,   Op::IMin,  Op::IMax,
        Op::IAddImm, Op::IMulImm, Op::IShlImm, Op::IAndImm,
        Op::ILoadImm, Op::FAdd,  Op::FSub,     Op::FMul,  Op::FDiv,
        Op::FSqrt,  Op::FNeg,    Op::FAbs,     Op::FMin,  Op::FMax,
        Op::FMov,   Op::FLoadImm, Op::CvtIF,   Op::CvtFI,
        Op::Prefetch, Op::LdI,   Op::LdF,      Op::StI,   Op::StF,
        Op::BEq,    Op::BNe,     Op::BLt,      Op::BGe,   Op::Jmp,
        Op::Barrier,
    };
    const auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    Instr in;
    in.op = pool[pick(0, static_cast<int>(std::size(pool)) - 1)];
    const auto rd = static_cast<Reg>(pick(1, 15));
    const auto ra = static_cast<Reg>(pick(0, 15));
    const auto rb = static_cast<Reg>(pick(0, 15));
    switch (in.op) {
      case Op::Nop:
      case Op::Barrier:
        break;
      case Op::ILoadImm:
        in.rd = rd;
        in.imm = pick(-1000, 1000);
        break;
      case Op::FLoadImm:
        in.rd = rd;
        in.imm = static_cast<std::int64_t>(rng()) << 32 |
                 static_cast<std::int64_t>(pick(0, 1 << 30));
        break;
      case Op::IAddImm:
      case Op::IMulImm:
      case Op::IShlImm:
      case Op::IAndImm:
        in.rd = rd;
        in.ra = ra;
        in.imm = in.op == Op::IShlImm ? pick(0, 70) : pick(-64, 64);
        break;
      case Op::Prefetch:
      case Op::LdI:
      case Op::LdF:
        in.rd = rd;
        in.ra = 0;      // r0 = fuzzBase
        in.imm = 8 * pick(0, 255);
        in.refId = ref_id++;
        break;
      case Op::StI:
      case Op::StF:
        in.ra = 0;
        in.rb = rb;
        in.imm = 8 * pick(0, 255);
        in.refId = ref_id++;
        break;
      case Op::BEq:
      case Op::BNe:
      case Op::BLt:
      case Op::BGe:
      case Op::Jmp:
        in.ra = ra;
        in.rb = rb;
        // Forward-only target, at most a few instructions ahead; the
        // current size is the not-yet-appended slot, so +1 skips at
        // least this branch itself.
        in.target =
            static_cast<std::int32_t>(prog.code.size()) + pick(1, 5);
        break;
      default:
        in.rd = rd;
        in.ra = ra;
        in.rb = rb;
        break;
    }
    prog.code.push_back(in);
}

Program
randomProgram(std::mt19937 &rng, int length)
{
    Program prog;
    prog.name = "fuzz";
    Instr base;
    base.op = Op::ILoadImm;
    base.rd = 0;
    base.imm = fuzzBase;
    prog.code.push_back(base);
    std::uint32_t ref_id = 0;
    for (int i = 0; i < length; ++i)
        appendRandom(rng, prog, ref_id);
    // Forward branch targets may point up to 5 slots past the last
    // random instruction; pad with Nops so every target lands on a
    // real instruction (or the one-past-the-end Halt).
    for (int i = 0; i < 5; ++i) {
        Instr nop;
        prog.code.push_back(nop);
    }
    Instr halt;
    halt.op = Op::Halt;
    prog.code.push_back(halt);
    prog.predecode();
    return prog;
}

TEST(ExecFuzz, RandomProgramsAgreeAcrossTiers)
{
    std::mt19937 rng(20260808);
    for (int round = 0; round < 40; ++round) {
        const Program prog = randomProgram(rng, 120);
        expectTiersAgree({prog});
    }
}

TEST(ExecFuzz, GeneratorCoversEveryFuzzableOpcode)
{
    // The fuzz pool covers every opcode except FlagWait (dedicated
    // multi-core test) and Halt (appended to every program).
    std::mt19937 rng(20260808);
    std::set<Op> seen;
    for (int round = 0; round < 40; ++round)
        for (const Instr &in : randomProgram(rng, 120).code)
            seen.insert(in.op);
    for (int raw = 0; raw <= static_cast<int>(Op::Halt); ++raw) {
        const Op op = static_cast<Op>(raw);
        if (op == Op::FlagWait)
            continue;
        EXPECT_TRUE(seen.count(op) != 0)
            << "fuzz never generated " << opName(op);
    }
}

// --- trap fallback ---------------------------------------------------

TEST(ExecTrap, ForgedOpcodeFallsBackToStep)
{
    // step() has no default case: an opcode outside the enum falls
    // through with no effect and advances pc. The threaded tier must
    // route it to the trap handler and reproduce exactly that.
    Program prog;
    prog.name = "forged";
    Instr load;
    load.op = Op::ILoadImm;
    load.rd = 1;
    load.imm = 7;
    prog.code.push_back(load);
    Instr forged;
    forged.op = static_cast<Op>(200);
    prog.code.push_back(forged);
    Instr add;
    add.op = Op::IAddImm;
    add.rd = 1;
    add.ra = 1;
    add.imm = 1;
    prog.code.push_back(add);
    Instr halt;
    halt.op = Op::Halt;
    prog.code.push_back(halt);
    // predecode() (deriveMeta) rejects unknown opcodes, so build the
    // sidecar by hand with a blank entry for the forged slot — the
    // shape of a program whose producer knows ops this tier does not.
    for (const Instr &in : prog.code)
        prog.meta.push_back(in.op == forged.op ? InstrMeta{}
                                               : deriveMeta(in));

    const ThreadedProgram tprog(prog);
    EXPECT_EQ(tprog.trapCount(), 1u);
    expectTiersAgree({prog});

    MemoryImage mem;
    ThreadedExecutor exec(mem);
    exec.addCore(prog);
    EXPECT_EQ(exec.run(), 4u);
    EXPECT_EQ(exec.regs(0).intRegs[1], 8);
    EXPECT_EQ(exec.trapCount(), 1u);
}

TEST(ExecTrap, OutOfRangeBranchTrapsOnlyIfTaken)
{
    // A branch whose target is outside [0, size] cannot be predecoded
    // to a record pointer; it is trap-routed at compile time but must
    // fault only when actually taken — here the condition is false.
    Program prog;
    prog.name = "oob";
    Instr load;
    load.op = Op::ILoadImm;
    load.rd = 1;
    load.imm = 1;
    prog.code.push_back(load);
    Instr branch;     // if (r1 == r2) goto -17: never taken (1 != 0)
    branch.op = Op::BEq;
    branch.ra = 1;
    branch.rb = 2;
    branch.target = -17;
    prog.code.push_back(branch);
    Instr halt;
    halt.op = Op::Halt;
    prog.code.push_back(halt);
    prog.predecode();

    const ThreadedProgram tprog(prog);
    EXPECT_EQ(tprog.trapCount(), 1u);
    expectTiersAgree({prog});
}

TEST(ExecTrapDeathTest, JumpOffTheEndAssertsOnBothTiers)
{
    // target == size is not trap-routed at compile time (it is a valid
    // record index: the sentinel). Taking it reaches the sentinel's
    // trap handler, whose step() call reproduces the interpreter's
    // "pc out of range" assertion — same failure, same message.
    Program prog;
    prog.name = "offend";
    Instr jmp;
    jmp.op = Op::Jmp;
    jmp.target = 1;     // == code.size()
    prog.code.push_back(jmp);
    prog.predecode();
    for (const ExecTier tier : {ExecTier::Interp, ExecTier::Threaded})
        EXPECT_DEATH(
            {
                MemoryImage mem;
                execute(prog, mem, 1ull << 20, tier);
            },
            "pc out of range");
}

// --- superinstruction fusion -----------------------------------------

/** lu-style inner loop: for (i = 0; i < n; ++i) a[i] -= m * b[i],
 *  lowered by hand the way codegen does (ishli; iadd; ldf ...). */
Program
daxpyLoop(int n)
{
    AsmBuilder b("daxpy");
    const Reg i = 1, limit = 2, a_base = 3, b_base = 4, addr = 5,
              scaled = 6;
    const Reg m = 1, va = 2, vb = 3;    // FP file
    b.iLoadImm(i, 0);
    b.iLoadImm(limit, n);
    b.iLoadImm(a_base, 0x20000);
    b.iLoadImm(b_base, 0x40000);
    b.fLoadImm(m, 1.5);
    const auto head = b.newLabel();
    b.bind(head);
    b.iShlImm(scaled, i, 3);
    b.iAdd(addr, b_base, scaled);
    b.ldF(vb, addr, 0, 1);
    b.fMul(vb, vb, m);
    b.iShlImm(scaled, i, 3);
    b.iAdd(addr, a_base, scaled);
    b.ldF(va, addr, 0, 2);
    b.fSub(va, va, vb);
    b.iShlImm(scaled, i, 3);
    b.iAdd(addr, a_base, scaled);
    b.stF(addr, 0, va, 3);
    b.iAddImm(i, i, 1);
    b.bLt(i, limit, head);
    b.halt();
    return b.finish();
}

TEST(ExecFusion, PeepholeFusesAddressGenAndBackEdge)
{
    const Program prog = daxpyLoop(64);
    const ThreadedProgram tprog(prog);
    // Three ishli;iadd;{ldf,stf} triples and one iaddi;blt back-edge.
    EXPECT_EQ(tprog.fusedCount(), 4u);
    expectTiersAgree({prog});
}

TEST(ExecFusion, FusedLoopMatchesInterpreterBitForBit)
{
    MemoryImage mem_interp;
    MemoryImage mem_threaded;
    for (int idx = 0; idx < 64; ++idx) {
        mem_interp.stF64(0x20000 + 8 * idx, 0.25 * idx);
        mem_interp.stF64(0x40000 + 8 * idx, 1.0 / (idx + 1));
        mem_threaded.stF64(0x20000 + 8 * idx, 0.25 * idx);
        mem_threaded.stF64(0x40000 + 8 * idx, 1.0 / (idx + 1));
    }
    const Program prog = daxpyLoop(64);
    const RunResult interp =
        runTier({prog}, mem_interp, ExecTier::Interp);
    const RunResult threaded =
        runTier({prog}, mem_threaded, ExecTier::Threaded);
    EXPECT_EQ(interp.totalInstrs, threaded.totalInstrs);
    EXPECT_EQ(interp.accesses.size(), threaded.accesses.size());
    for (int idx = 0; idx < 64; ++idx)
        EXPECT_EQ(
            std::bit_cast<std::uint64_t>(
                mem_interp.ldF64(0x20000 + 8 * idx)),
            std::bit_cast<std::uint64_t>(
                mem_threaded.ldF64(0x20000 + 8 * idx)))
            << "a[" << idx << "]";
}

TEST(ExecFusion, BranchIntoMiddleOfFusedSequenceRunsUnfused)
{
    // The peephole rewrites only the first record of a fused sequence;
    // swallowed slots keep their single-op handlers, so a branch that
    // lands mid-sequence executes the tail unfused. Jump into the
    // iadd of an ishli;iadd;ldf triple and expect interpreter results.
    AsmBuilder b("midentry");
    const Reg scaled = 1, addr = 2, base = 3, skip = 4, zero = 5;
    b.iLoadImm(base, 0x20000);
    b.iLoadImm(scaled, 8);
    b.iLoadImm(skip, 1);
    const auto mid = b.newLabel();
    const auto over = b.newLabel();
    b.bNe(skip, zero, over);    // r5 never written: 1 != 0, taken
    // Fusible triple; `mid` binds to its second instruction.
    b.iShlImm(scaled, scaled, 1);
    b.bind(mid);
    b.iAdd(addr, base, scaled);
    b.ldI(static_cast<Reg>(6), addr, 0, 7);
    b.halt();
    b.bind(over);
    b.jmp(mid);
    const Program prog = b.finish();
    const ThreadedProgram tprog(prog);
    EXPECT_GE(tprog.fusedCount(), 1u);
    expectTiersAgree({prog});
}

// --- multi-core synchronization --------------------------------------

TEST(ExecSync, BarrierAndFlagWaitMatchInterpreter)
{
    // Core 0 computes, publishes a flag, and barriers; core 1 blocks
    // on the flag, consumes the value, and barriers. Exercises the
    // blocked-core round-robin, FlagWait's retire semantics, and
    // barrier release with a halted core.
    AsmBuilder p0("producer");
    p0.iLoadImm(1, 0x8000);
    p0.iLoadImm(2, 41);
    p0.iAddImm(2, 2, 1);
    p0.stI(1, 8, 2, 1);      // data
    p0.iLoadImm(3, 1);
    p0.stI(1, 0, 3, 2);      // flag <- 1
    p0.barrier();
    p0.halt();

    AsmBuilder p1("consumer");
    p1.iLoadImm(1, 0x8000);
    p1.iLoadImm(2, 1);
    p1.flagWait(1, 0, 2);    // until mem[flag] >= 1
    p1.ldI(3, 1, 8, 3);      // read data
    p1.iAddImm(3, 3, 100);
    p1.barrier();
    p1.halt();

    const std::vector<Program> programs{p0.finish(), p1.finish()};
    expectTiersAgree(programs);

    MemoryImage mem;
    ThreadedExecutor exec(mem);
    exec.addCore(programs[0]);
    exec.addCore(programs[1]);
    exec.run();
    EXPECT_EQ(exec.regs(1).intRegs[3], 142);
}

// --- tier selection --------------------------------------------------

TEST(ExecTier, EnvSelectsTier)
{
    setenv("MPC_EXEC_TIER", "interp", 1);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Interp);
    setenv("MPC_EXEC_TIER", "threaded", 1);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Threaded);
    setenv("MPC_EXEC_TIER", "", 1);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Threaded);
    unsetenv("MPC_EXEC_TIER");
    EXPECT_EQ(execTierFromEnv(), ExecTier::Threaded);
    EXPECT_STREQ(execTierName(ExecTier::Interp), "interp");
    EXPECT_STREQ(execTierName(ExecTier::Threaded), "threaded");
}

TEST(ExecTierDeathTest, UnknownTierIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("MPC_EXEC_TIER", "jit", 1);
            execTierFromEnv();
        },
        testing::ExitedWithCode(1), "unknown tier");
    unsetenv("MPC_EXEC_TIER");
}

TEST(ExecTier, PinOverridesEnvironmentInBothOrders)
{
    // Order 1: flag resolved (pin) first, environment changes after.
    // This is the mpclust/mpctune --exec-tier scenario: the tier is
    // resolved once per invocation, so an env change mid-run (or an
    // inherited variable) cannot produce a mixed-tier run.
    unsetenv("MPC_EXEC_TIER");
    pinExecTier(ExecTier::Interp);
    EXPECT_TRUE(execTierPinned());
    setenv("MPC_EXEC_TIER", "threaded", 1);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Interp);

    // Order 2: environment set first, then the pin (the flag) wins.
    clearExecTierPin();
    EXPECT_FALSE(execTierPinned());
    setenv("MPC_EXEC_TIER", "interp", 1);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Interp);
    pinExecTier(ExecTier::Threaded);
    EXPECT_EQ(execTierFromEnv(), ExecTier::Threaded);

    // Unpinned again: back to reading the environment fresh.
    clearExecTierPin();
    EXPECT_EQ(execTierFromEnv(), ExecTier::Interp);
    unsetenv("MPC_EXEC_TIER");
    EXPECT_EQ(execTierFromEnv(), ExecTier::Threaded);
}

TEST(ExecTier, PinIsStableAcrossRepeatedCalls)
{
    // Every execute()/executeWithHook() default argument consults
    // execTierFromEnv(); under a pin, consecutive calls must agree no
    // matter how the environment flaps in between.
    pinExecTier(ExecTier::Interp);
    for (int i = 0; i < 4; ++i) {
        setenv("MPC_EXEC_TIER", i % 2 == 0 ? "threaded" : "interp", 1);
        EXPECT_EQ(execTierFromEnv(), ExecTier::Interp) << i;
    }
    clearExecTierPin();
    unsetenv("MPC_EXEC_TIER");
}

TEST(ExecTier, ExecuteEntryPointHonorsExplicitTier)
{
    const Program prog = daxpyLoop(16);
    MemoryImage mem_interp;
    MemoryImage mem_threaded;
    const std::uint64_t n_interp = execute(prog, mem_interp, 1ull << 24,
                                           ExecTier::Interp);
    const std::uint64_t n_threaded = execute(
        prog, mem_threaded, 1ull << 24, ExecTier::Threaded);
    EXPECT_EQ(n_interp, n_threaded);
    for (int idx = 0; idx < 16; ++idx)
        EXPECT_EQ(mem_interp.ld64(0x20000 + 8 * idx),
                  mem_threaded.ld64(0x20000 + 8 * idx));
}

// --- instruction budget ----------------------------------------------

TEST(ExecDeathTest, RunawayLoopExceedsBudget)
{
    AsmBuilder b("spin");
    const auto head = b.newLabel();
    b.bind(head);
    b.iAddImm(1, 1, 1);
    b.jmp(head);
    b.halt();
    const Program prog = b.finish();
    EXPECT_EXIT(
        {
            MemoryImage mem;
            ThreadedExecutor exec(mem);
            exec.addCore(prog);
            exec.run(1000);
        },
        testing::ExitedWithCode(1), "budget exceeded");
}

TEST(ExecDeathTest, StraightLineOverrunFaultsAtExit)
{
    // The threaded tier checks the budget at control-flow edges, not
    // per straight-line instruction, so a too-long basic block faults
    // at its terminating Halt — still fatal, as the interpreter is.
    Program prog;
    prog.name = "long";
    for (int i = 0; i < 64; ++i) {
        Instr add;
        add.op = Op::IAddImm;
        add.rd = 1;
        add.ra = 1;
        add.imm = 1;
        prog.code.push_back(add);
    }
    Instr halt;
    halt.op = Op::Halt;
    prog.code.push_back(halt);
    prog.predecode();
    EXPECT_EXIT(
        {
            MemoryImage mem;
            ThreadedExecutor exec(mem);
            exec.addCore(prog);
            exec.run(10);
        },
        testing::ExitedWithCode(1), "budget exceeded");
}

} // namespace
} // namespace mpc::kisa
