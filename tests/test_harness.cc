/**
 * @file
 * Unit tests for the harness: the P_m cache profiler, configuration
 * scaling, the runner's wiring (profiling -> driver -> codegen ->
 * simulation), and driver guard rails (write-only loops, time-loop
 * unrolling refusal).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "codegen/codegen.hh"
#include "common/json.hh"
#include "harness/manifest.hh"
#include "harness/parallel.hh"
#include "harness/profiler.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "transform/driver.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

using namespace mpc::ir;

TEST(Profiler, StreamingLoadsMissOncePerLine)
{
    // Stride-1 loads over a large array through a small cache: miss
    // rate ~1/8 (64-byte lines, 8-byte elements).
    kisa::AsmBuilder b("stream");
    const kisa::Reg r_i = 1, r_n = 2, r_base = 3;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, 4096);
    b.iLoadImm(r_base, 0x100000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(10, r_base, 0, /*ref_id=*/7);
    b.iAddImm(r_base, r_base, 8);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    const auto program = b.finish();

    kisa::MemoryImage scratch;
    mem::CacheConfig geometry;
    geometry.sizeBytes = 8 * 1024;
    geometry.assoc = 4;
    geometry.lineBytes = 64;
    const auto profile =
        CacheProfile::measure(program, scratch, geometry);
    EXPECT_EQ(profile.accesses(7), 4096u);
    EXPECT_NEAR(profile.missRate(7), 1.0 / 8.0, 0.01);
    // Unknown refIds are pessimistic.
    EXPECT_DOUBLE_EQ(profile.missRate(999), 1.0);
}

TEST(Profiler, RepeatedSweepOfResidentArrayHits)
{
    kisa::AsmBuilder b("resident");
    const kisa::Reg r_t = 1, r_i = 2, r_n = 3, r_addr = 5;
    b.iLoadImm(r_t, 0);
    auto touter = b.newLabel();
    b.bind(touter);
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, 64);
    b.iLoadImm(r_addr, 0x200000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(10, r_addr, 0, 3);
    b.iAddImm(r_addr, r_addr, 8);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.iAddImm(r_t, r_t, 1);
    b.iLoadImm(r_n, 8);
    b.bLt(r_t, r_n, touter);
    b.halt();
    const auto program = b.finish();

    kisa::MemoryImage scratch;
    mem::CacheConfig geometry;
    geometry.sizeBytes = 8 * 1024;
    geometry.assoc = 4;
    const auto profile =
        CacheProfile::measure(program, scratch, geometry);
    // 512 bytes working set, revisited 8 times: only cold misses.
    EXPECT_LT(profile.missRate(3), 0.05);
}

TEST(ScaleConfig, ScalesTheLowestLevel)
{
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeOcean(tiny);
    auto two_level = scaleConfig(sys::baseConfig(), w);
    EXPECT_EQ(two_level.hier.l2.sizeBytes, w.l2Bytes);
    auto single = scaleConfig(sys::exemplarConfig(), w);
    EXPECT_EQ(single.hier.l1.sizeBytes, w.l2Bytes);
}

TEST(Runner, ClusteredRunCarriesReportAndKernel)
{
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeErlebacher(tiny);
    RunSpec spec;
    spec.clustered = true;
    const auto run = runWorkload(w, spec);
    EXPECT_FALSE(run.report.nests.empty());
    EXPECT_NE(run.kernelText.find("for"), std::string::npos);
    EXPECT_GT(run.result.cycles, 0u);
}

TEST(Runner, BaseRunHasNoReport)
{
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeOcean(tiny);
    RunSpec spec;
    spec.clustered = false;
    const auto run = runWorkload(w, spec);
    EXPECT_TRUE(run.report.nests.empty());
}

TEST(DriverGuards, WriteOnlyLoopNotJammed)
{
    // The paper: "we prefer not to unroll-and-jam loops that only
    // expose additional write miss references."
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {64, 64});
    std::vector<StmtPtr> ib;
    {
        std::vector<ExprPtr> subs;
        subs.push_back(varref("j"));
        subs.push_back(varref("i"));
        ib.push_back(assign(aref(x, std::move(subs)), fconst(0.0)));
    }
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(64),
                             std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    const auto report = transform::applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
}

TEST(DriverGuards, TimeLoopUnrollingRefused)
{
    // Unrolling a loop whose index is absent from the subscripts gains
    // no memory parallelism (copies share spatial groups): refuse.
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {512});
    std::vector<StmtPtr> ib;
    {
        std::vector<ExprPtr> subs;
        subs.push_back(varref("i"));
        std::vector<ExprPtr> subs2;
        subs2.push_back(varref("i"));
        ib.push_back(assign(aref(x, std::move(subs)),
                            add(aref(x, std::move(subs2)),
                                fconst(1.0))));
    }
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(512), std::move(ib)));
    k.body.push_back(forLoop("t", iconst(0), iconst(8),
                             std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    params.enableInnerUnroll = false;
    const auto report = transform::applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
}

TEST(Runner, MaxUnrollCapRespected)
{
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeLatbench(tiny);
    RunSpec spec;
    spec.clustered = true;
    spec.maxUnroll = 3;
    const auto run = runWorkload(w, spec);
    ASSERT_FALSE(run.report.nests.empty());
    EXPECT_LE(run.report.nests[0].unrollDegree, 3);
}


TEST(ParallelRunner, ThrowingJobDoesNotLoseOtherResults)
{
    // One job throws mid-list: every other result slot must still
    // settle before the failure is rethrown, and the error must name
    // the failing job by index and label.
    const std::size_t n = 8;
    std::vector<std::atomic<int>> done(n);
    std::vector<std::function<void()>> jobs;
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < n; ++i) {
        labels.push_back("job-" + std::to_string(i));
        jobs.push_back([&done, i] {
            if (i == 3)
                throw std::runtime_error("synthetic fault");
            done[i] = 1;
        });
    }
    bool threw = false;
    try {
        ParallelRunner(4).run(jobs, labels);
    } catch (const std::runtime_error &e) {
        threw = true;
        const std::string what = e.what();
        EXPECT_NE(what.find("parallel job 3"), std::string::npos) << what;
        EXPECT_NE(what.find("job-3"), std::string::npos) << what;
        EXPECT_NE(what.find("synthetic fault"), std::string::npos) << what;
        EXPECT_NE(what.find("1 of 8 jobs failed"), std::string::npos)
            << what;
    }
    EXPECT_TRUE(threw);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(done[i].load(), i == 3 ? 0 : 1) << "slot " << i;
}

TEST(ParallelRunner, MultipleFailuresReportFirstAndCount)
{
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back([i] {
            if (i % 2 == 0)
                throw std::runtime_error("fault " + std::to_string(i));
        });
    // Single-threaded so "first" is deterministic (job 0).
    try {
        ParallelRunner(1).run(jobs);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("parallel job 0"), std::string::npos) << what;
        EXPECT_NE(what.find("3 of 6 jobs failed"), std::string::npos)
            << what;
    }
}

TEST(ParallelRunner, MidSweepFailureAccountsWallTimesAndCulprit)
{
    // A job throws early while longer jobs are still running on other
    // workers: the sweep must let every other job finish, identify the
    // culprit by index and label, count exactly one failure, and leave
    // only the failing job's wall_seconds slot at zero — the surviving
    // slots carry their real (sleep-bounded) times.
    std::vector<std::function<void()>> jobs;
    std::vector<std::string> labels;
    std::atomic<int> completed{0};
    for (int i = 0; i < 4; ++i) {
        labels.push_back("sweep-" + std::to_string(i));
        jobs.push_back([i, &completed] {
            if (i == 1)
                throw std::runtime_error("mid-sweep fault");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            ++completed;
        });
    }
    std::vector<double> wall;
    try {
        ParallelRunner(4).run(jobs, labels, &wall);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("parallel job 1"), std::string::npos)
            << what;
        EXPECT_NE(what.find("sweep-1"), std::string::npos) << what;
        EXPECT_NE(what.find("mid-sweep fault"), std::string::npos)
            << what;
        EXPECT_NE(what.find("1 of 4 jobs failed"), std::string::npos)
            << what;
    }
    EXPECT_EQ(completed.load(), 3);
    ASSERT_EQ(wall.size(), 4u);
    EXPECT_EQ(wall[1], 0.0);
    for (const int i : {0, 2, 3})
        EXPECT_GE(wall[i], 0.015) << "slot " << i;
}

TEST(ParallelRunner, AllJobsFailingStillSettlesWallVector)
{
    // Even a total wipeout must resize wall_seconds (stale caller
    // content replaced) and zero every slot before rethrowing.
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back(
            [] { throw std::runtime_error("boom"); });
    std::vector<double> wall{1.0, 2.0};
    try {
        ParallelRunner(2).run(jobs, {}, &wall);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("3 of 3 jobs failed"),
                  std::string::npos)
            << e.what();
    }
    ASSERT_EQ(wall.size(), 3u);
    for (const double w : wall)
        EXPECT_EQ(w, 0.0);
}

TEST(ParallelRunner, ReportsPerJobWallTimes)
{
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back([i] {
            if (i == 2)
                throw std::runtime_error("fault");
            // Measurable but tiny work.
            volatile double x = 0;
            for (int k = 0; k < 1000; ++k)
                x = x + k;
        });
    std::vector<double> wall{99.0};     // stale content must be replaced
    try {
        ParallelRunner(2).run(jobs, {}, &wall);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &) {
    }
    ASSERT_EQ(wall.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == 2)
            EXPECT_EQ(wall[i], 0.0);    // failed job reports no time
        else
            EXPECT_GE(wall[i], 0.0);
    }
}

TEST(ParallelRunner, RetriedThenSucceededJobIsNotAFailure)
{
    // Satellite regression (PR 7 accounting): a job that throws once
    // and succeeds on retry must not surface as a failure, and its
    // wall slot must settle exactly once — with the successful
    // attempt's time, not the sum over attempts.
    const std::size_t n = 4;
    std::vector<std::atomic<int>> attempts(n);
    std::vector<std::function<void()>> jobs;
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < n; ++i) {
        labels.push_back("flaky-" + std::to_string(i));
        jobs.push_back([&attempts, i] {
            // Jobs 1 and 3 fail on their first attempt only.
            if (++attempts[i] == 1 && (i % 2) == 1)
                throw std::runtime_error("transient fault");
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        });
    }
    std::vector<double> wall;
    // Must NOT throw: every job eventually succeeded.
    ParallelRunner(2).run(jobs, labels, &wall, /*retries=*/1);
    ASSERT_EQ(wall.size(), n);
    EXPECT_EQ(attempts[1].load(), 2);
    EXPECT_EQ(attempts[3].load(), 2);
    for (std::size_t i = 0; i < n; ++i) {
        // Each slot carries one successful attempt's sleep-bounded
        // time — roughly one 5ms sleep, never a two-attempt sum with
        // zero left behind.
        EXPECT_GE(wall[i], 0.004) << i;
        EXPECT_LT(wall[i], 1.0) << i;
    }
}

TEST(ParallelRunner, RetriesExhaustedStillCountsOneFailure)
{
    std::vector<std::atomic<int>> attempts(3);
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < 3; ++i)
        jobs.push_back([&attempts, i] {
            ++attempts[i];
            if (i == 0)
                throw std::runtime_error("permanent fault");
        });
    std::vector<double> wall;
    try {
        ParallelRunner(1).run(jobs, {}, &wall, /*retries=*/2);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        // One failure — not one per attempt.
        EXPECT_NE(what.find("1 of 3 jobs failed"), std::string::npos)
            << what;
        EXPECT_NE(what.find("permanent fault"), std::string::npos)
            << what;
    }
    EXPECT_EQ(attempts[0].load(), 3);   // 1 + retries attempts
    EXPECT_EQ(attempts[1].load(), 1);
    EXPECT_EQ(attempts[2].load(), 1);
    ASSERT_EQ(wall.size(), 3u);
    EXPECT_EQ(wall[0], 0.0);
}

namespace
{

/** A synthetic base/clust pair with known histograms and nest report. */
PairResult
syntheticPair()
{
    PairResult pair;
    // Base: 100 ticks at 0, 100 at 1 -> MLP 1.0.
    pair.base.result.l2ReadMshr = OccupancyHistogram(8);
    pair.base.result.l2ReadMshr.record(0, 100);
    pair.base.result.l2ReadMshr.record(1, 100);
    pair.base.result.l2TotalMshr = pair.base.result.l2ReadMshr;
    // Clust: 100 at 0, 50 at 1, 50 at 3 -> MLP (50+150)/100 = 2.0.
    pair.clust.result.l2ReadMshr = OccupancyHistogram(8);
    pair.clust.result.l2ReadMshr.record(0, 100);
    pair.clust.result.l2ReadMshr.record(1, 50);
    pair.clust.result.l2ReadMshr.record(3, 50);
    pair.clust.result.l2TotalMshr = pair.clust.result.l2ReadMshr;
    transform::NestReport nest;
    nest.loopVar = "i";
    nest.fBefore = 1.25;
    nest.fAfter = 3.5;
    nest.unrollDegree = 4;
    nest.innerUnrollDegree = 1;
    pair.clust.report.nests.push_back(nest);
    return pair;
}

} // namespace

TEST(Report, MeasuredMlpIsConditionalMeanOfReadMshrHistogram)
{
    const PairResult pair = syntheticPair();
    EXPECT_DOUBLE_EQ(measuredMlp(pair.base.result), 1.0);
    EXPECT_DOUBLE_EQ(measuredMlp(pair.clust.result), 2.0);
}

TEST(Report, ModelVsMeasuredTableShowsPredictedAndMeasured)
{
    const std::vector<std::string> names{"app"};
    const std::vector<PairResult> pairs{syntheticPair()};
    const std::string table =
        formatModelVsMeasured(names, pairs, "model vs measured");
    EXPECT_NE(table.find("model vs measured"), std::string::npos);
    EXPECT_NE(table.find("app"), std::string::npos);
    EXPECT_NE(table.find("1.25"), std::string::npos);    // f before
    EXPECT_NE(table.find("3.50"), std::string::npos);    // f after
    EXPECT_NE(table.find("1.00"), std::string::npos);    // MLP base
    EXPECT_NE(table.find("2.00"), std::string::npos);    // MLP clust
}

TEST(Report, ModelVsMeasuredPlaceholderWhenNoNests)
{
    PairResult pair = syntheticPair();
    pair.clust.report.nests.clear();
    const std::string table =
        formatModelVsMeasured({"app"}, {pair}, "t");
    // Measured MLP still shows even when the driver reported no nests.
    EXPECT_NE(table.find("2.00"), std::string::npos);
}

TEST(Report, ModelVsMeasuredJsonRoundTrips)
{
    const std::string path = "harness_test_mvm.json";
    ASSERT_TRUE(
        writeModelVsMeasuredJson(path, {"app"}, {syntheticPair()}));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());
    EXPECT_NE(json.find("\"app\": \"app\""), std::string::npos);
    EXPECT_NE(json.find("\"mlpBase\": 1.000000"), std::string::npos);
    EXPECT_NE(json.find("\"mlpClust\": 2.000000"), std::string::npos);
    EXPECT_NE(json.find("\"fBefore\": 1.250000"), std::string::npos);
    EXPECT_NE(json.find("\"unroll\": 4"), std::string::npos);
}

TEST(Report, Fig4SeriesFeedsTableAndJsonFromOneSource)
{
    const PairResult pair = syntheticPair();
    const std::vector<std::string> labels{"base", "clust"};
    const std::vector<const sys::RunResult *> runs{&pair.base.result,
                                                   &pair.clust.result};
    const Fig4Series s = fig4Series(labels, runs);
    ASSERT_EQ(s.fracRead.size(), 2u);
    ASSERT_EQ(s.fracRead[0].size(),
              static_cast<std::size_t>(s.maxLevel) + 1);
    EXPECT_DOUBLE_EQ(s.fracRead[0][0], 1.0);
    EXPECT_DOUBLE_EQ(s.fracRead[0][1], 0.5);
    EXPECT_DOUBLE_EQ(s.fracRead[1][3], 0.25);
    // The text table renders the same numbers.
    const std::string table = formatFig4(labels, runs, "fig4");
    EXPECT_NE(table.find("0.500"), std::string::npos);
    EXPECT_NE(table.find("0.250"), std::string::npos);

    const std::string path = "harness_test_fig4.json";
    ASSERT_TRUE(writeFig4Json(path, labels, runs));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());
    EXPECT_NE(json.find("\"label\": \"clust\""), std::string::npos);
    EXPECT_NE(json.find("\"fracAtLeastRead\""), std::string::npos);
    // No manifest passed: the member renders as an explicit null, so
    // consumers can rely on the key being present.
    EXPECT_NE(json.find("\"manifest\": null"), std::string::npos);
}

TEST(Manifest, ConfigKeyStableAndSensitiveToSimRelevantFields)
{
    const sys::SystemConfig config = sys::baseConfig();
    const std::string key = configKey(config, 4);
    EXPECT_EQ(key, configKey(config, 4));
    EXPECT_NE(key, configKey(config, 8));

    auto bigger = config;
    bigger.hier.l2.numMshrs *= 2;
    EXPECT_NE(key, configKey(bigger, 4));

    // Observability/validation toggles are guaranteed result-neutral
    // and must NOT move the key (or every obs run would miss the
    // cache its plain twin filled).
    auto observed = config;
    observed.obsMetrics = true;
    observed.validate = true;
    observed.samplePeriod = 1000;
    EXPECT_EQ(key, configKey(observed, 4));

    EXPECT_EQ(configHash(config, 4), fnv1a(key));
}

TEST(Manifest, RunManifestJsonCarriesEveryField)
{
    auto config = sys::baseConfig();
    config.samplePeriod = 5000;
    const RunManifest m = makeRunManifest(
        "em3d", "kernel text", config, 4, "fuse,cluster");
    const std::string text = m.toJson();

    json::Value root;
    ASSERT_TRUE(json::parse(text, root)) << text;
    EXPECT_EQ(json::strField(root, "schema"), "mpc-manifest-v1");
    EXPECT_EQ(json::strField(root, "workload"), "em3d");
    EXPECT_EQ(json::strField(root, "config"), config.name);
    EXPECT_EQ(json::strField(root, "pipeline"), "fuse,cluster");
    EXPECT_EQ(json::numField(root, "procs"), 4.0);
    EXPECT_EQ(json::numField(root, "samplePeriod"), 5000.0);
    EXPECT_EQ(json::strField(root, "kernelHash"),
              json::hex64(fnv1a("kernel text")));
    EXPECT_EQ(json::strField(root, "configHash"),
              json::hex64(configHash(config, 4)));
    const std::string tier = json::strField(root, "execTier");
    EXPECT_TRUE(tier == "interp" || tier == "threaded") << tier;
    const std::string mode = json::strField(root, "stepMode");
    EXPECT_TRUE(mode == "skip" || mode == "reference") << mode;
}

TEST(Manifest, SplicesIntoArtifactWritersVerbatim)
{
    const PairResult pair = syntheticPair();
    const std::string manifest =
        makeInvocationManifest("test_bench", sys::baseConfig(), 0)
            .toJson();
    const std::string path = "harness_test_fig4_manifest.json";
    ASSERT_TRUE(writeFig4Json(path, {"base", "clust"},
                              {&pair.base.result, &pair.clust.result},
                              manifest));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    json::Value root;
    ASSERT_TRUE(json::parse(json, root)) << json.substr(0, 200);
    const json::Value *man = root.field("manifest");
    ASSERT_NE(man, nullptr);
    EXPECT_EQ(json::strField(*man, "workload"), "test_bench");
    EXPECT_EQ(json::numField(*man, "procs"), 0.0);
}

TEST(PerRefStats, SimulatorTracksPerReferenceMisses)
{
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeEm3d(tiny);
    RunSpec spec;
    spec.clustered = false;
    const auto run = runWorkload(w, spec);
    // Loads are attributed at the L1; stores at the L2 (write-through
    // around the L1).
    EXPECT_GE(run.result.l1.perRef.size(), 3u);
    EXPECT_GE(run.result.l2.perRef.size(), 1u);
    std::uint64_t total_accesses = 0;
    run.result.l1.perRef.forEach(
        [&](std::uint32_t ref_id, const auto &counts) {
            EXPECT_LE(counts.misses, counts.accesses) << ref_id;
            total_accesses += counts.accesses;
        });
    EXPECT_GT(total_accesses, 100u);
}

TEST(PerRefStats, ProfileAgreesWithSimulatedMissRates)
{
    // A tag-only profile with the L1 geometry should roughly predict
    // the simulated per-reference L1 non-hit rates (the same check the
    // driver relies on when it feeds P_m from the L2-geometry profile).
    workloads::SizeParams tiny;
    tiny.scale = 1;
    const auto w = workloads::makeEm3d(tiny);

    kisa::MemoryImage scratch;
    w.init(scratch);
    const auto program = codegen::lower(w.kernel);
    const auto config = scaleConfig(sys::baseConfig(), w);
    const auto profile = CacheProfile::measure(program, scratch,
                                               config.hier.l1);

    RunSpec spec;
    spec.clustered = false;
    const auto run = runWorkload(w, spec);
    int compared = 0;
    run.result.l1.perRef.forEach(
        [&](std::uint32_t ref_id, const auto &counts) {
            if (counts.accesses < 500)
                return;
            const double simulated = double(counts.misses) /
                                     double(counts.accesses);
            const double predicted = profile.missRate(int(ref_id));
            EXPECT_NEAR(simulated, predicted, 0.35)
                << "refId " << ref_id;
            ++compared;
        });
    EXPECT_GE(compared, 1);
}

TEST(ParallelBudget, DividesHardwareByShards)
{
    // MPC_JOBS unset: the worker budget shares the machine with the
    // per-simulation shard threads.
    bool over = false;
    EXPECT_EQ(ParallelRunner::budgetThreads(0, 0, 16, &over), 16);
    EXPECT_EQ(ParallelRunner::budgetThreads(0, 1, 16, &over), 16);
    EXPECT_EQ(ParallelRunner::budgetThreads(0, 4, 16, &over), 4);
    EXPECT_EQ(ParallelRunner::budgetThreads(0, 8, 16, &over), 2);
    EXPECT_FALSE(over);
    // Never below one worker, even when shards exceed the machine.
    EXPECT_EQ(ParallelRunner::budgetThreads(0, 32, 16, &over), 1);
    EXPECT_FALSE(over);
}

TEST(ParallelBudget, ExplicitJobsWinsButFlagsOversubscription)
{
    bool over = true;
    EXPECT_EQ(ParallelRunner::budgetThreads(4, 4, 16, &over), 4);
    EXPECT_FALSE(over);

    // 8 jobs x 4 shard threads = 32 > 16 hardware threads.
    EXPECT_EQ(ParallelRunner::budgetThreads(8, 4, 16, &over), 8);
    EXPECT_TRUE(over);

    // Uniprocessor sims (shards <= 1) count one thread per job.
    over = true;
    EXPECT_EQ(ParallelRunner::budgetThreads(8, 0, 16, &over), 8);
    EXPECT_FALSE(over);
    EXPECT_EQ(ParallelRunner::budgetThreads(24, 1, 16, &over), 24);
    EXPECT_TRUE(over);
}

} // namespace
} // namespace mpc::harness
