/**
 * @file
 * Sharded-stepper tests: the shard partition plan, the static
 * sync-reachability table, and — the property the whole design hangs
 * on — bit-identical results across shard counts, including with a
 * tiny mailbox (backpressure/grow path) and through the ShardRestart
 * serial-fallback path when a run hits same-cycle cross-shard sharing.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "kisa/program.hh"
#include "system/shard.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;

// ---------------------------------------------------------------- plan

TEST(ShardPlan, ContiguousCoveringPartition)
{
    for (int n : {1, 7, 8, 16, 64}) {
        for (int s : {1, 2, 3, 4, 8}) {
            if (s > n)
                continue;
            sys::ShardPlan plan(n, s);
            ASSERT_EQ(plan.shards(), s);
            EXPECT_EQ(plan.first(0), 0);
            EXPECT_EQ(plan.first(s), n);
            for (int k = 0; k < s; ++k) {
                const int size = plan.first(k + 1) - plan.first(k);
                // Contiguous, non-empty, balanced to within one node.
                EXPECT_GE(size, n / s);
                EXPECT_LE(size, n / s + 1);
                for (int node = plan.first(k); node < plan.first(k + 1);
                     ++node)
                    EXPECT_EQ(plan.shardOf(node), k);
            }
        }
    }
}

// ------------------------------------------------- sync reachability

TEST(SyncReachability, StraightLineWindow)
{
    // pc: 0..5 = adds, 6 = barrier, 7 = halt.
    AsmBuilder b("straight");
    for (int i = 0; i < 6; ++i)
        b.iAdd(1, 1, 1);
    b.barrier();
    b.halt();
    const Program p = b.finish();

    const auto reach = sys::syncReachability(p, 4);
    ASSERT_EQ(reach.size(), p.code.size());
    // Fetching at pc 3..6 can dispatch the barrier in the same tick
    // (distance < 4); earlier pcs cannot, and the halt never reaches
    // a sync op.
    for (int pc = 0; pc <= 2; ++pc)
        EXPECT_FALSE(reach[static_cast<size_t>(pc)]) << "pc " << pc;
    for (int pc = 3; pc <= 6; ++pc)
        EXPECT_TRUE(reach[static_cast<size_t>(pc)]) << "pc " << pc;
    EXPECT_FALSE(reach[7]);
}

TEST(SyncReachability, JumpSkipsBarrier)
{
    // 0: jmp 2; 1: barrier; 2: halt. The barrier is dead code along
    // the jump path, so pc 0 must not be flagged.
    AsmBuilder b("skip");
    auto past = b.newLabel();
    b.jmp(past);
    b.barrier();
    b.bind(past);
    b.halt();
    const Program p = b.finish();

    const auto reach = sys::syncReachability(p, 8);
    EXPECT_FALSE(reach[0]);
    EXPECT_TRUE(reach[1]);
    EXPECT_FALSE(reach[2]);
}

TEST(SyncReachability, BranchEitherPathCounts)
{
    // 0: beq -> 3; 1: add; 2: halt; 3: flagwait; 4: halt. The branch
    // may reach the FlagWait, so pc 0 is a hazard; the fallthrough
    // add at pc 1 is not.
    AsmBuilder b("branch");
    auto sync_path = b.newLabel();
    b.bEq(1, 2, sync_path);
    b.iAdd(1, 1, 1);
    b.halt();
    b.bind(sync_path);
    b.flagWait(3, 0, 4);
    b.halt();
    const Program p = b.finish();

    const auto reach = sys::syncReachability(p, 4);
    EXPECT_TRUE(reach[0]);
    EXPECT_FALSE(reach[1]);
    EXPECT_FALSE(reach[2]);
    EXPECT_TRUE(reach[3]);
}

// ------------------------------------------------------- determinism

constexpr Addr kSharedBase = 0x200000;  // read-shared, 16 lines
constexpr Addr kPrivBase = 0x400000;    // per-core private stripes
constexpr Addr kHotLine = 0x300000;     // write ping-pong target

/**
 * A multiprocessor workload with plenty of cross-node traffic but no
 * cross-node *write* sharing: every core streams reads over a shared
 * read-only region (remote GetS traffic) and writes its own private
 * stripe, with barriers separating two phases (exercising the
 * serialized sync-hazard cycles between parallel ones).
 */
std::vector<Program>
mixedWorkload(int procs)
{
    std::vector<Program> ps;
    for (int c = 0; c < procs; ++c) {
        AsmBuilder b("mixed");
        b.iLoadImm(1, static_cast<std::int64_t>(kSharedBase));
        b.iLoadImm(2, static_cast<std::int64_t>(
                          kPrivBase + static_cast<Addr>(c) * 0x10000));
        b.iLoadImm(5, c);
        for (int phase = 0; phase < 2; ++phase) {
            for (int i = 0; i < 24; ++i) {
                const int line = (c * 7 + i * 3 + phase) % 16;
                b.ldI(3, 1, line * 64);
                b.iAdd(5, 5, 3);
                b.stI(2, (i % 8) * 64, 5);
            }
            b.barrier();
        }
        b.halt();
        ps.push_back(b.finish());
    }
    return ps;
}

/** Cross-shard write ping-pong: the last core hammers stores into one
 *  line while core 0 reads it — the same-cycle probe-visibility
 *  pattern sharded stepping detects and restarts on. */
std::vector<Program>
pingPongWorkload(int procs)
{
    std::vector<Program> ps;
    for (int c = 0; c < procs; ++c) {
        AsmBuilder b("pingpong");
        b.iLoadImm(1, static_cast<std::int64_t>(kHotLine));
        if (c == procs - 1) {
            b.iLoadImm(2, 1);
            for (int i = 0; i < 64; ++i)
                b.stI(1, 0, 2);
        } else if (c == 0) {
            for (int i = 0; i < 64; ++i)
                b.ldI(3, 1, 0);
        }
        b.halt();
        ps.push_back(b.finish());
    }
    return ps;
}

void
initImage(kisa::MemoryImage &image)
{
    for (int i = 0; i < 16 * 8; ++i)
        image.st64(kSharedBase + static_cast<Addr>(i) * 8,
                   static_cast<std::uint64_t>(i) * 3 + 1);
    image.st64(kHotLine, 7);
}

/** Every integer counter of a run, flattened; two runs are "the same
 *  run" iff these match (latency sums included, printed exactly). */
std::string
fingerprint(const sys::RunResult &r)
{
    std::ostringstream os;
    os.precision(17);
    os << r.cycles << ' ' << r.instructions << ' ';
    for (const auto *cs : {&r.l1, &r.l2})
        os << cs->loads << ' ' << cs->loadHits << ' ' << cs->loadMisses
           << ' ' << cs->loadCoalesced << ' ' << cs->writes << ' '
           << cs->writeHits << ' ' << cs->writeMisses << ' '
           << cs->writeCoalesced << ' ' << cs->upgrades << ' '
           << cs->writebacks << ' ' << cs->fills << ' ';
    os << r.fabric.localReqs << ' ' << r.fabric.remoteReqs << ' '
       << r.fabric.cacheToCache << ' ' << r.fabric.invalidations << ' '
       << r.fabric.writebacks << ' '
       << r.fabric.remoteLatency.count() << ' '
       << r.fabric.remoteLatency.sum() << ' ';
    for (const auto &c : r.cores)
        os << c.doneTick << ' ' << c.retired << ' ' << c.loads << ' '
           << c.stores << ' ' << c.branches << ' ' << c.mispredicts
           << ' ' << c.busySlots << ' ' << c.dataReadSlots << ' '
           << c.dataWriteSlots << ' ' << c.syncSlots << ' '
           << c.cpuSlots << ' ';
    return os.str();
}

/** Build a fresh system and run it, mirroring the harness's restart
 *  handling: a ShardRestart falls back to a fresh single-thread run.
 *  @p restarted reports whether the fallback fired. */
std::string
runFingerprint(std::vector<Program> (*make)(int), int procs,
               const sys::SystemConfig &cfg, bool *restarted = nullptr)
{
    if (restarted != nullptr)
        *restarted = false;
    auto simulate = [&](const sys::SystemConfig &c) {
        kisa::MemoryImage image;
        initImage(image);
        sys::System s(c, make(procs), image);
        return fingerprint(s.run());
    };
    try {
        return simulate(cfg);
    } catch (const sys::ShardRestart &) {
        if (restarted != nullptr)
            *restarted = true;
        sys::SystemConfig serial = cfg;
        serial.shards = 0;
        return simulate(serial);
    }
}

class ShardDeterminism : public ::testing::TestWithParam<bool>
{
  protected:
    sys::SystemConfig
    config() const
    {
        sys::SystemConfig cfg = sys::baseConfig();
        cfg.skipAhead = GetParam();
        return cfg;
    }
};

TEST_P(ShardDeterminism, ShardSweepBitIdentical)
{
    const int procs = 8;
    sys::SystemConfig cfg = config();
    const std::string serial =
        runFingerprint(mixedWorkload, procs, cfg);
    for (int shards : {2, 4, 8}) {
        cfg.shards = shards;
        bool restarted = false;
        EXPECT_EQ(runFingerprint(mixedWorkload, procs, cfg, &restarted),
                  serial)
            << "shards=" << shards;
        // Read-only sharing raises no probes, so the sweep really
        // exercises the sharded fast path rather than the fallback.
        EXPECT_FALSE(restarted) << "shards=" << shards;
    }
}

TEST_P(ShardDeterminism, TinyMailboxBackpressureStillExact)
{
    // Capacity 1 forces the overflow/grow path on nearly every
    // captured event; results must not change.
    const int procs = 8;
    sys::SystemConfig cfg = config();
    const std::string serial =
        runFingerprint(mixedWorkload, procs, cfg);
    cfg.shards = 4;
    cfg.shardMailboxCapacity = 1;
    EXPECT_EQ(runFingerprint(mixedWorkload, procs, cfg), serial);
}

TEST_P(ShardDeterminism, ConflictRestartMatchesSerial)
{
    // Write ping-pong across the outermost shard pair: whether or not
    // the run trips ShardRestart (timing decides), the harness-style
    // fallback must land on exactly the single-thread result.
    const int procs = 8;
    sys::SystemConfig cfg = config();
    const std::string serial =
        runFingerprint(pingPongWorkload, procs, cfg);
    for (int shards : {2, 8}) {
        cfg.shards = shards;
        EXPECT_EQ(runFingerprint(pingPongWorkload, procs, cfg), serial)
            << "shards=" << shards;
    }
}

INSTANTIATE_TEST_SUITE_P(StepModes, ShardDeterminism,
                         ::testing::Values(true, false),
                         [](const auto &info) {
                             return info.param ? "skipAhead"
                                              : "reference";
                         });

} // namespace
} // namespace mpc
