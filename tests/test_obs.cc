/**
 * @file
 * Observability-layer tests: the ring-buffer tracer must emit
 * well-formed Chrome-trace JSON with monotonic timestamps; the
 * MissTracker's MLP histogram and cluster-size distribution must match
 * hand-computed oracles; the stall taxonomy must tile exactly the same
 * retire slots the core's own breakdown charges; and turning metrics or
 * tracing on must leave simulation results bit-identical in both step
 * modes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "kisa/program.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every "ts": value in document order. */
std::vector<long long>
timestampsOf(const std::string &json)
{
    std::vector<long long> ts;
    std::size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        ts.push_back(std::atoll(json.c_str() + pos));
    }
    return ts;
}

/** A loop with loads, FP arithmetic, stores, and a loop branch. */
Program
loopProgram(int iters, Addr base)
{
    AsmBuilder b("loop");
    b.iLoadImm(1, static_cast<std::int64_t>(base));
    b.iLoadImm(2, 0);
    b.iLoadImm(3, iters);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(4, 1, 0);
    b.fAdd(4, 4, 4);
    b.stF(1, 8, 4);
    b.iAddImm(1, 1, 64);
    b.iAddImm(2, 2, 1);
    b.bLt(2, 3, loop);
    b.halt();
    return b.finish();
}

/** Two independent load streams per iteration: the loads to the two
 *  lines have no dependence, so an OoO core issues them back to back
 *  and their misses overlap (a size-2 cluster per iteration). */
Program
twoStreamProgram(int iters, Addr base_a, Addr base_b)
{
    AsmBuilder b("two-stream");
    b.iLoadImm(1, static_cast<std::int64_t>(base_a));
    b.iLoadImm(2, static_cast<std::int64_t>(base_b));
    b.iLoadImm(3, 0);
    b.iLoadImm(5, iters);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(6, 1, 0, /*ref_id=*/1);
    b.ldF(7, 2, 0, /*ref_id=*/2);
    b.fAdd(6, 6, 7);
    b.iAddImm(1, 1, 64);
    b.iAddImm(2, 2, 64);
    b.iAddImm(3, 3, 1);
    b.bLt(3, 5, loop);
    b.halt();
    return b.finish();
}

TEST(Tracer, DumpsWellFormedChromeJsonWithMonotonicTimestamps)
{
    obs::Tracer tracer(64);
    tracer.setTrackName(0, "core 0");
    tracer.setTrackName(1000, "node 0 misses");
    // Record deliberately out of timestamp order: spans land at their
    // *end*, so a long span recorded late must still sort by start.
    tracer.record(50, 0, "retire", 0x40);
    tracer.span(10, 60, 1000, "miss.read", 0xabc);
    tracer.counter(20, 1000, "mshr", 2);
    tracer.record(30, 0, "retire", 0x44);

    const std::string path = "obs_test_trace.json";
    ASSERT_TRUE(tracer.dumpChromeJson(path));
    const std::string json = readFile(path);
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"core 0\""), std::string::npos);
    EXPECT_NE(json.find("\"node 0 misses\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

    const auto ts = timestampsOf(json);
    ASSERT_EQ(ts.size(), 4u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_LE(ts[i - 1], ts[i]) << "timestamps out of order at " << i;
}

TEST(Tracer, RingOverwritesOldestButKeepsCounts)
{
    obs::Tracer tracer(4);
    for (int i = 0; i < 10; ++i)
        tracer.record(i, 0, "e");
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracer, DumpReportsDroppedEventsInFooter)
{
    const std::string path = "obs_test_dropped_trace.json";
    {
        // Overflowing ring: 10 recorded into capacity 4 -> 6 dropped.
        obs::Tracer tracer(4);
        for (int i = 0; i < 10; ++i)
            tracer.record(i, 0, "e");
        ASSERT_TRUE(tracer.dumpChromeJson(path));
        const std::string json = readFile(path);
        std::remove(path.c_str());
        EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos)
            << json;
    }
    {
        // No overflow: the footer must report zero.
        obs::Tracer tracer(16);
        tracer.record(1, 0, "e");
        ASSERT_TRUE(tracer.dumpChromeJson(path));
        const std::string json = readFile(path);
        std::remove(path.c_str());
        EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos)
            << json;
    }
}

TEST(MissTracker, MlpHistogramMatchesHandComputedOracle)
{
    // Timeline: miss A issues at t=10, miss B at t=20, A fills at
    // t=110, B at t=120, run ends at t=200. Level 1 is held for
    // [10,20) + [110,120) = 20 ticks, level 2 for [20,110) = 90 ticks.
    obs::MissTracker tracker(0, 8, nullptr);
    tracker.missIssued(10, 0x100, true, 1, 1);
    tracker.missIssued(20, 0x200, true, 2, 2);
    tracker.missFilled(110, 0x100, 10, true, 1, 1);
    tracker.missFilled(120, 0x200, 20, true, 0, 0);
    tracker.finalize(200);

    const auto &mlp = tracker.mlpHistogram();
    EXPECT_EQ(mlp.totalTicks(), 200);
    EXPECT_EQ(mlp.ticksAt(1), 20);
    EXPECT_EQ(mlp.ticksAt(2), 90);
    EXPECT_EQ(mlp.ticksAt(0), 90);
    // Conditional mean: (20*1 + 90*2) / 110.
    EXPECT_DOUBLE_EQ(mlp.meanLevelAtLeast(1), 200.0 / 110.0);

    // One maximal >=1 interval with two read-miss arrivals.
    const auto &clusters = tracker.clusterSizes();
    EXPECT_EQ(clusters.total(), 1u);
    EXPECT_EQ(clusters.countAt(2), 1u);
}

TEST(MissTracker, SeparatesClustersByQuietIntervals)
{
    obs::MissTracker tracker(0, 8, nullptr);
    // Cluster 1: a single isolated miss.
    tracker.missIssued(10, 0x100, true, 1, 1);
    tracker.missFilled(50, 0x100, 10, true, 0, 0);
    // Quiet gap [50,100), then cluster 2: two overlapping misses.
    tracker.missIssued(100, 0x200, true, 1, 1);
    tracker.missIssued(110, 0x300, true, 2, 2);
    tracker.missFilled(140, 0x200, 100, true, 1, 1);
    tracker.missFilled(160, 0x300, 110, true, 0, 0);
    tracker.finalize(200);

    const auto &clusters = tracker.clusterSizes();
    EXPECT_EQ(clusters.total(), 2u);
    EXPECT_EQ(clusters.countAt(1), 1u);
    EXPECT_EQ(clusters.countAt(2), 1u);
}

TEST(MissTracker, LoadCoalescingIntoWriteEntryJoinsCluster)
{
    obs::MissTracker tracker(0, 8, nullptr);
    // A write miss holds the line (read occupancy 0 — no cluster yet);
    // a load then coalesces into it, raising read occupancy to 1 and
    // opening a size-1 cluster.
    tracker.missIssued(10, 0x100, false, 0, 1);
    tracker.missCoalesced(30, 0x100, true, 1, 1);
    tracker.missFilled(90, 0x100, 10, true, 0, 0);
    tracker.finalize(100);

    EXPECT_EQ(tracker.clusterSizes().total(), 1u);
    EXPECT_EQ(tracker.clusterSizes().countAt(1), 1u);
    // Reads were outstanding only during [30,90).
    EXPECT_EQ(tracker.mlpHistogram().ticksAt(1), 60);
}

TEST(Obs, StallTaxonomyTilesTheCoreBreakdownExactly)
{
    for (const bool skip : {true, false}) {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(loopProgram(300, 0x100000));
        auto cfg = sys::baseConfig();
        cfg.skipAhead = skip;
        cfg.obsMetrics = true;
        sys::System s(cfg, std::move(ps), image);
        const auto r = s.run();

        ASSERT_TRUE(r.obsMetrics.enabled);
        // The taxonomy is charged at exactly the sites that charge the
        // core's own non-busy retire slots, so the totals must tile.
        std::uint64_t non_busy = 0;
        for (const auto &cs : r.cores)
            non_busy += cs.dataReadSlots + cs.dataWriteSlots +
                        cs.syncSlots + cs.cpuSlots;
        EXPECT_EQ(r.obsMetrics.stall.total(), non_busy)
            << "skip=" << skip;
    }
}

TEST(Obs, TwoStreamKernelShowsOverlapInMlpAndClusters)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    // Streams 1 MiB apart: distinct lines, same cache, no coalescing.
    ps.push_back(twoStreamProgram(200, 0x100000, 0x200000));
    auto cfg = sys::baseConfig();
    cfg.obsMetrics = true;
    sys::System s(cfg, std::move(ps), image);
    const auto r = s.run();

    ASSERT_TRUE(r.obsMetrics.enabled);
    // The two per-iteration loads are independent, so misses must
    // overlap: measured MLP beyond 1 and multi-miss clusters.
    EXPECT_GT(r.obsMetrics.mlpMean(), 1.2);
    EXPECT_GT(r.obsMetrics.mlp.fracAtLeast(2), 0.0);
    std::uint64_t multi = 0;
    for (int v = 2; v <= r.obsMetrics.clusterSizes.maxRecorded(); ++v)
        multi += r.obsMetrics.clusterSizes.countAt(v);
    EXPECT_GT(multi, 0u);
    // Both static load references saw misses with recorded overlap.
    EXPECT_GE(r.obsMetrics.perRef.size(), 2u);
}

TEST(Obs, MetricsAndTracingDoNotPerturbResults)
{
    const std::string trace_path = "obs_test_identity_trace.json";
    sys::RunResult results[2];
    for (const int obs_on : {0, 1}) {
        for (const bool skip : {true, false}) {
            kisa::MemoryImage image;
            auto cfg = sys::baseConfig();
            cfg.skipAhead = skip;
            if (obs_on) {
                cfg.obsMetrics = true;
                cfg.obsTracePath = trace_path;
            }
            std::vector<Program> ps;
            ps.push_back(loopProgram(250, 0x100000));
            sys::System s(cfg, std::move(ps), image);
            const auto r = s.run();
            if (skip)
                results[obs_on] = r;
            else {
                // Reference mode must agree with skip mode too.
                EXPECT_EQ(r.cycles, results[obs_on].cycles);
            }
        }
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].instructions, results[1].instructions);
    EXPECT_EQ(results[0].l1.loadMisses, results[1].l1.loadMisses);
    EXPECT_EQ(results[0].l2.loadMisses, results[1].l2.loadMisses);
    EXPECT_EQ(results[0].busyCycles, results[1].busyCycles);
    EXPECT_EQ(results[0].dataReadCycles, results[1].dataReadCycles);
    EXPECT_EQ(results[0].cpuCycles, results[1].cpuCycles);

    // The enabled run also dumped a parseable-looking trace.
    const std::string json = readFile(trace_path);
    std::remove(trace_path.c_str());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    const auto ts = timestampsOf(json);
    EXPECT_GT(ts.size(), 0u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        ASSERT_LE(ts[i - 1], ts[i]);
}

TEST(Obs, RunMetricsRenderAndSerialize)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(twoStreamProgram(50, 0x100000, 0x200000));
    auto cfg = sys::baseConfig();
    cfg.obsMetrics = true;
    sys::System s(cfg, std::move(ps), image);
    const auto r = s.run();

    const std::string text = r.obsMetrics.toString();
    EXPECT_NE(text.find("MLP"), std::string::npos);
    EXPECT_NE(text.find("stall"), std::string::npos);
    const std::string json = r.obsMetrics.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"mlpMean\""), std::string::npos);
    EXPECT_NE(json.find("\"stallSlots\""), std::string::npos);
}

} // namespace
} // namespace mpc
