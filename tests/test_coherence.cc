/**
 * @file
 * Unit tests driving the directory coherence fabric directly: GetS and
 * GetX transactions, upgrades, 3-hop dirty forwarding through the
 * home, invalidation counting, writebacks, and latency ordering.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "mem/config.hh"
#include "noc/mesh.hh"

namespace mpc::coherence
{
namespace
{

struct Fixture : public ::testing::Test
{
    static constexpr int numNodes = 4;

    Fixture()
        : mesh(numNodes, noc::MeshConfig{}),
          placement(numNodes, 64),
          fabric(eq, numNodes, FabricConfig{}, mesh, placement)
    {
        mem::CacheConfig cache_cfg;
        cache_cfg.sizeBytes = 4096;
        cache_cfg.assoc = 4;
        cache_cfg.lineBytes = 64;
        cache_cfg.numMshrs = 8;
        cache_cfg.numPorts = 4;
        cache_cfg.hitLatency = 4;
        mem::MemBusConfig bus_cfg;
        for (int n = 0; n < numNodes; ++n) {
            caches.push_back(std::make_unique<mem::Cache>(
                eq, cache_cfg, /*coherent=*/true,
                /*write_allocate=*/true));
            memories.push_back(
                std::make_unique<mem::MainMemory>(eq, bus_cfg, 64));
            caches.back()->setDownstream(fabric.port(n));
            fabric.attachCache(n, caches.back().get());
            fabric.attachMemory(n, memories.back().get());
        }
    }

    /** Line address homed on node @p home (default interleave). */
    Addr
    lineHomedOn(NodeId home, int which = 0) const
    {
        return static_cast<Addr>(home + which * numNodes) * 64;
    }

    /** Blocking-style load into node n's cache. */
    Tick
    load(NodeId n, Addr addr)
    {
        Tick done = 0;
        caches[size_t(n)]->loadAccess(addr, 0,
                                      [&done](Tick t) { done = t; });
        eq.advanceTo(eq.now() + 5000);
        EXPECT_GT(done, 0u);
        return done;
    }

    Tick
    store(NodeId n, Addr addr)
    {
        Tick done = 0;
        caches[size_t(n)]->writeAccess(addr, 0,
                                       [&done](Tick t) { done = t; });
        eq.advanceTo(eq.now() + 5000);
        EXPECT_GT(done, 0u);
        return done;
    }

    mem::EventQueue eq;
    noc::Mesh mesh;
    PlacementPolicy placement;
    CoherenceFabric fabric;
    std::vector<std::unique_ptr<mem::Cache>> caches;
    std::vector<std::unique_ptr<mem::MainMemory>> memories;
};

TEST_F(Fixture, LocalGetSFasterThanRemote)
{
    const Tick t_local = load(0, lineHomedOn(0));
    const Tick start = eq.now();
    const Tick t_remote = load(0, lineHomedOn(3, 1));
    EXPECT_LT(t_local, t_remote - start);
    EXPECT_EQ(fabric.stats().localReqs, 1u);
    EXPECT_EQ(fabric.stats().remoteReqs, 1u);
}

TEST_F(Fixture, GetSInstallsShared)
{
    const Addr addr = lineHomedOn(1);
    load(0, addr);
    EXPECT_EQ(caches[0]->lineState(addr), mem::LineState::Shared);
    load(2, addr);
    EXPECT_EQ(caches[2]->lineState(addr), mem::LineState::Shared);
    EXPECT_EQ(caches[0]->lineState(addr), mem::LineState::Shared);
}

TEST_F(Fixture, GetXInstallsModifiedAndInvalidatesSharers)
{
    const Addr addr = lineHomedOn(1);
    load(0, addr);
    load(2, addr);
    store(3, addr);
    EXPECT_EQ(caches[3]->lineState(addr), mem::LineState::Modified);
    EXPECT_FALSE(caches[0]->isResident(addr));
    EXPECT_FALSE(caches[2]->isResident(addr));
    EXPECT_EQ(fabric.stats().invalidations, 2u);
}

TEST_F(Fixture, UpgradeKeepsData)
{
    const Addr addr = lineHomedOn(2);
    load(0, addr);
    ASSERT_EQ(caches[0]->lineState(addr), mem::LineState::Shared);
    store(0, addr);
    EXPECT_EQ(caches[0]->lineState(addr), mem::LineState::Modified);
    EXPECT_EQ(caches[0]->stats().upgrades, 1u);
}

TEST_F(Fixture, DirtyForwardingIsCacheToCache)
{
    const Addr addr = lineHomedOn(1);
    store(0, addr);   // node 0 holds it Modified
    ASSERT_EQ(caches[0]->lineState(addr), mem::LineState::Modified);
    load(2, addr);    // 3-hop: 2 -> home 1 -> owner 0 -> home -> 2
    EXPECT_EQ(fabric.stats().cacheToCache, 1u);
    EXPECT_TRUE(caches[2]->isResident(addr));
    // Owner dropped its copy (simplified protocol).
    EXPECT_FALSE(caches[0]->isResident(addr));
}

TEST_F(Fixture, CacheToCacheSlowerThanCleanRemote)
{
    const Addr dirty = lineHomedOn(1, 0);
    const Addr clean = lineHomedOn(1, 1);
    store(0, dirty);
    const Tick s1 = eq.now();
    load(2, dirty);
    const Tick c2c_latency = eq.now() - s1;
    const Tick s2 = eq.now();
    load(2, clean);
    const Tick clean_latency = eq.now() - s2;
    // Both bounded by the advanceTo quantum; compare fabric stats.
    (void)c2c_latency;
    (void)clean_latency;
    ASSERT_EQ(fabric.stats().c2cLatency.count(), 1u);
    ASSERT_GE(fabric.stats().remoteLatency.count(), 1u);
    // On this tiny 2x2 mesh the forwarding hops and the memory access
    // nearly cancel; just require the same order of magnitude. (The
    // 16-node calibration test in test_system.cc pins the paper's
    // c2c > remote ordering, where the extra hops dominate.)
    EXPECT_GT(fabric.stats().c2cLatency.mean(),
              0.8 * fabric.stats().remoteLatency.mean());
}

TEST_F(Fixture, WritebackReturnsLineToMemory)
{
    const Addr addr = lineHomedOn(1);
    store(0, addr);
    fabric.port(0);   // (no-op; keep fixture symmetric)
    // Evict by invalidating via another writer, then reload clean.
    store(2, addr);
    load(3, addr);
    EXPECT_GE(fabric.stats().cacheToCache, 1u);
    // Explicit writeback path.
    const Addr addr2 = lineHomedOn(2, 3);
    store(0, addr2);
    caches[0]->probeInvalidate(alignDown(addr2, 64));
    fabric.port(0)->writeback(alignDown(addr2, 64));
    eq.advanceTo(eq.now() + 2000);
    EXPECT_GE(fabric.stats().writebacks, 1u);
    // A later GetS is served from memory, not cache-to-cache.
    const auto c2c_before = fabric.stats().cacheToCache;
    load(3, addr2);
    EXPECT_EQ(fabric.stats().cacheToCache, c2c_before);
}

TEST_F(Fixture, SelfOwnedStaleRerequestServedFromMemory)
{
    const Addr addr = lineHomedOn(1);
    store(0, addr);
    // Silent clean-M drop (no PutM), then re-request.
    caches[0]->backInvalidateLine(alignDown(addr, 64));
    load(0, addr);
    EXPECT_TRUE(caches[0]->isResident(addr));
}

} // namespace
} // namespace mpc::coherence
