/**
 * @file
 * Tests for the pass pipeline layer: spec parsing, the registry, the
 * report renderings and their JSON round-trip, equivalence between the
 * default pipeline and the legacy applyClustering() entry point, the
 * IR verifier, and fault injection (an illegal pass must be caught and
 * named by the per-pass verification).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "ir/eval.hh"
#include "ir/kernel.hh"
#include "ir/verify.hh"
#include "transform/driver.hh"
#include "transform/pipeline.hh"

namespace mpc::transform
{
namespace
{

using namespace mpc::ir;

std::vector<ExprPtr>
subs1(ExprPtr a)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
}

/** B[i] = A[i] * 2 over two adjacent sweeps (fusable, evaluable). */
Kernel
twinSweeps(std::int64_t n = 40)
{
    Kernel k;
    k.name = "twin";
    Array *a = k.addArray("A", ScalType::F64, {n + 4});
    Array *b = k.addArray("B", ScalType::F64, {n + 4});
    Array *c = k.addArray("C", ScalType::F64, {n + 4});
    std::vector<StmtPtr> b1;
    b1.push_back(assign(aref(b, subs1(varref("i"))),
                        mul(aref(a, subs1(varref("i"))), fconst(2.0))));
    k.body.push_back(forLoop("i", iconst(0), iconst(n), std::move(b1)));
    std::vector<StmtPtr> b2;
    b2.push_back(assign(aref(c, subs1(varref("i2"))),
                        add(aref(b, subs1(varref("i2"))), fconst(1.0))));
    k.body.push_back(forLoop("i2", iconst(0), iconst(n),
                             std::move(b2)));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

// ---------------------------------------------------------------------
// Spec parsing and the registry.
// ---------------------------------------------------------------------

TEST(PipelineSpec, ParsesValidSpec)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse("partition,cluster,prefetch", pipeline,
                                error))
        << error;
    const std::vector<std::string> expected{"partition", "cluster",
                                            "prefetch"};
    EXPECT_EQ(pipeline.passNames(), expected);
}

TEST(PipelineSpec, TrimsWhitespace)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(" fuse , cluster ", pipeline, error))
        << error;
    const std::vector<std::string> expected{"fuse", "cluster"};
    EXPECT_EQ(pipeline.passNames(), expected);
}

TEST(PipelineSpec, RejectsUnknownPass)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("cluster,warp-drive", pipeline, error));
    EXPECT_NE(error.find("unknown pass 'warp-drive'"),
              std::string::npos)
        << error;
}

TEST(PipelineSpec, RejectsEmptySpec)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("", pipeline, error));
    EXPECT_NE(error.find("empty pipeline spec"), std::string::npos)
        << error;
}

TEST(PipelineSpec, RejectsEmptyPassName)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("fuse,,cluster", pipeline, error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos)
        << error;
}

TEST(PipelineSpec, RejectsDuplicatePass)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("cluster,cluster", pipeline, error));
    EXPECT_NE(error.find("duplicate pass 'cluster'"),
              std::string::npos)
        << error;
}

TEST(PipelineSpec, DefaultSpecParses)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(defaultPipelineSpec(), pipeline, error))
        << error;
    EXPECT_EQ(pipeline.passNames().size(), 5u);
}

TEST(PassRegistryTest, HasAllBuiltinPasses)
{
    PassRegistry &registry = PassRegistry::instance();
    for (const char *name :
         {"partition", "fuse", "cluster", "postlude-interchange",
          "scalar-replace", "inner-unroll", "prefetch"}) {
        EXPECT_TRUE(registry.has(name)) << name;
        ASSERT_NE(registry.find(name), nullptr) << name;
        EXPECT_STREQ(registry.find(name)->name(), name);
        EXPECT_STREQ(registry.stableName(name), name);
    }
    const auto names = registry.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PipelineSpec, ParamsGateSpecPasses)
{
    DriverParams params;
    params.enableInnerUnroll = false;
    params.enablePostludeInterchange = false;
    const std::string spec = pipelineSpecFromParams(params);
    EXPECT_EQ(spec.find("inner-unroll"), std::string::npos);
    EXPECT_EQ(spec.find("postlude-interchange"), std::string::npos);
    EXPECT_NE(spec.find("cluster"), std::string::npos);
    EXPECT_NE(spec.find("scalar-replace"), std::string::npos);
}

TEST(PipelineSpec, RejectsTrailingComma)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("fuse,cluster,", pipeline, error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos)
        << error;
}

// ---------------------------------------------------------------------
// Per-pass knobs: "cluster(maxDegree=8),prefetch(dist=4)".
// ---------------------------------------------------------------------

TEST(PipelineKnobs, ParsesKnobSpec)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse("cluster(maxDegree=8),prefetch(dist=4)",
                                pipeline, error))
        << error;
    const std::vector<std::string> expected{"cluster", "prefetch"};
    EXPECT_EQ(pipeline.passNames(), expected);
    ASSERT_EQ(pipeline.knobs().size(), 2u);
    EXPECT_EQ(pipeline.knobs()[0].pass, "cluster");
    EXPECT_EQ(pipeline.knobs()[0].name, "maxDegree");
    EXPECT_EQ(pipeline.knobs()[0].value, 8);
    EXPECT_EQ(pipeline.knobs()[1].pass, "prefetch");
    EXPECT_EQ(pipeline.knobs()[1].name, "dist");
    EXPECT_EQ(pipeline.knobs()[1].value, 4);
    EXPECT_EQ(pipeline.spec(), "cluster(maxDegree=8),prefetch(dist=4)");
}

TEST(PipelineKnobs, ToleratesWhitespaceEverywhere)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(
        "  cluster ( maxDegree = 8 ) ,\tprefetch( dist =4 ) ",
        pipeline, error))
        << error;
    EXPECT_EQ(pipeline.spec(), "cluster(maxDegree=8),prefetch(dist=4)");
}

TEST(PipelineKnobs, AppliesKnobsToParams)
{
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(
        "cluster(maxDegree=6),inner-unroll(factor=3),prefetch(dist=7)",
        pipeline, error))
        << error;
    DriverParams params;
    pipeline.applyKnobs(params);
    EXPECT_EQ(params.maxUnroll, 6);
    EXPECT_EQ(params.maxInnerUnroll, 3);
    EXPECT_EQ(params.prefetchDistanceLines, 7);
}

TEST(PipelineKnobs, RejectsUnknownKnobNamingToken)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("cluster(warp=9)", pipeline, error));
    EXPECT_NE(error.find("unknown knob 'warp'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("cluster"), std::string::npos) << error;
}

TEST(PipelineKnobs, RejectsKnobOnWrongPass)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("fuse(maxDegree=4)", pipeline, error));
    EXPECT_NE(error.find("unknown knob 'maxDegree'"),
              std::string::npos)
        << error;
}

TEST(PipelineKnobs, RejectsNonPositiveOrMalformedValue)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(
        Pipeline::parse("cluster(maxDegree=0)", pipeline, error));
    EXPECT_NE(error.find("positive integer"), std::string::npos)
        << error;
    EXPECT_FALSE(
        Pipeline::parse("cluster(maxDegree=four)", pipeline, error));
    EXPECT_NE(error.find("'four'"), std::string::npos) << error;
    EXPECT_FALSE(
        Pipeline::parse("cluster(maxDegree)", pipeline, error));
    EXPECT_NE(error.find("missing '=value'"), std::string::npos)
        << error;
}

TEST(PipelineKnobs, RejectsUnterminatedKnobList)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(
        Pipeline::parse("cluster(maxDegree=8", pipeline, error));
    EXPECT_NE(error.find("malformed knob list"), std::string::npos)
        << error;
}

TEST(PipelineKnobs, RejectsDuplicateKnob)
{
    Pipeline pipeline;
    std::string error;
    EXPECT_FALSE(Pipeline::parse("cluster(maxDegree=2,maxDegree=4)",
                                 pipeline, error));
    EXPECT_NE(error.find("duplicate knob 'maxDegree'"),
              std::string::npos)
        << error;
}

TEST(PipelineKnobs, RunAppliesKnobsToItsParamsCopy)
{
    // maxDegree caps the cluster pass's unroll-and-jam binary search,
    // so a knob-limited run must report a degree no larger than the
    // cap even though the caller's DriverParams allow 16.
    Kernel k = twinSweeps(64);
    DriverParams params;
    params.missRate = [](int) { return 1.0; };
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse("fuse,cluster(maxDegree=2)", pipeline,
                                error))
        << error;
    pipeline.verifyMode = VerifyMode::Off;
    const PipelineReport report = pipeline.run(k, params);
    ASSERT_FALSE(report.nests.empty());
    for (const auto &nest : report.nests)
        EXPECT_LE(nest.unrollDegree, 2) << nest.toString();
    EXPECT_EQ(params.maxUnroll, 16)
        << "run() must not mutate the caller's params";
}

TEST(PipelineKnobs, SpecFromParamsEmitsKnobsForNonDefaultFields)
{
    DriverParams params;
    params.maxUnroll = 8;
    params.maxInnerUnroll = 4;
    const std::string spec = pipelineSpecFromParams(params);
    EXPECT_NE(spec.find("cluster(maxDegree=8)"), std::string::npos)
        << spec;
    EXPECT_NE(spec.find("inner-unroll(factor=4)"), std::string::npos)
        << spec;
    // Default-valued fields must NOT grow knobs: the default pipeline
    // spec string (and therefore every bench stdout) stays unchanged.
    EXPECT_EQ(pipelineSpecFromParams(DriverParams()),
              defaultPipelineSpec());
}

TEST(PipelineKnobs, SpecFromParamsRoundTripsAllGateCombos)
{
    for (int mask = 0; mask < 8; ++mask) {
        for (const int max_unroll : {16, 8}) {
            for (const int max_inner : {8, 3}) {
                DriverParams params;
                params.enablePostludeInterchange = (mask & 1) != 0;
                params.enableScalarReplacement = (mask & 2) != 0;
                params.enableInnerUnroll = (mask & 4) != 0;
                params.maxUnroll = max_unroll;
                params.maxInnerUnroll = max_inner;

                const std::string spec =
                    pipelineSpecFromParams(params);
                Pipeline pipeline;
                std::string error;
                ASSERT_TRUE(Pipeline::parse(spec, pipeline, error))
                    << spec << ": " << error;
                // Canonical rendering reproduces the spec...
                EXPECT_EQ(pipeline.spec(), spec);
                // ...and re-applying the knobs reproduces the
                // knob-backed fields the gates exposed.
                DriverParams rebuilt;
                rebuilt.enablePostludeInterchange =
                    params.enablePostludeInterchange;
                rebuilt.enableScalarReplacement =
                    params.enableScalarReplacement;
                rebuilt.enableInnerUnroll = params.enableInnerUnroll;
                pipeline.applyKnobs(rebuilt);
                EXPECT_EQ(rebuilt.maxUnroll, params.maxUnroll) << spec;
                if (params.enableInnerUnroll) {
                    EXPECT_EQ(rebuilt.maxInnerUnroll,
                              params.maxInnerUnroll)
                        << spec;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Report renderings and the JSON round-trip.
// ---------------------------------------------------------------------

PipelineReport
sampleReport()
{
    PipelineReport report;
    NestReport nest;
    nest.loopVar = "i";
    nest.alpha = 0.5;
    nest.addressRecurrence = true;
    nest.fBefore = 1.0;
    nest.fAfter = 5.0;
    nest.unrollDegree = 4;
    nest.innerUnrollDegree = 2;
    nest.fusedLoops = 1;
    nest.scalarsReplaced = 3;
    nest.postludeInterchanged = true;
    nest.note = "jammed 2 levels up; \"quoted\"\nand a newline";
    report.nests.push_back(nest);
    report.leadingRefIds = {3, 1, 4};
    PassReport pass;
    pass.pass = "cluster";
    pass.wallMs = 1.25;
    pass.actions = 2;
    pass.detail = "note";
    report.passes.push_back(pass);
    pass.pass = "prefetch";
    pass.skipped = true;
    report.passes.push_back(pass);
    VerifyFailure failure;
    failure.pass = "cluster";
    failure.what = "checksum mismatch";
    report.verifyFailures.push_back(failure);
    return report;
}

TEST(Reports, NestReportToStringMatchesLegacyFormat)
{
    NestReport nest;
    nest.loopVar = "i";
    nest.alpha = 1.0;
    nest.fBefore = 2.0;
    nest.fAfter = 10.0;
    nest.unrollDegree = 5;
    const std::string line = nest.toString();
    EXPECT_NE(line.find("loop i"), std::string::npos);
    EXPECT_NE(line.find("alpha=1.00"), std::string::npos);
    EXPECT_NE(line.find("f: 2.0 -> 10.0"), std::string::npos);
    EXPECT_NE(line.find("uaj=5"), std::string::npos);
    EXPECT_EQ(line.find("(addr)"), std::string::npos);
    nest.addressRecurrence = true;
    EXPECT_NE(nest.toString().find("(addr)"), std::string::npos);
}

TEST(Reports, PassReportToStringShowsSkipsAndDetail)
{
    PassReport pass;
    pass.pass = "cluster";
    pass.wallMs = 0.5;
    pass.actions = 3;
    EXPECT_NE(pass.toString().find("cluster"), std::string::npos);
    EXPECT_EQ(pass.toString().find("[skipped]"), std::string::npos);
    pass.skipped = true;
    pass.detail = "why";
    EXPECT_NE(pass.toString().find("[skipped]"), std::string::npos);
    EXPECT_NE(pass.toString().find("why"), std::string::npos);
}

TEST(Reports, JsonRoundTrip)
{
    const PipelineReport report = sampleReport();
    PipelineReport parsed;
    ASSERT_TRUE(PipelineReport::fromJson(report.toJson(), parsed))
        << report.toJson();

    ASSERT_EQ(parsed.nests.size(), 1u);
    const NestReport &nest = parsed.nests[0];
    EXPECT_EQ(nest.loopVar, "i");
    EXPECT_DOUBLE_EQ(nest.alpha, 0.5);
    EXPECT_TRUE(nest.addressRecurrence);
    EXPECT_DOUBLE_EQ(nest.fBefore, 1.0);
    EXPECT_DOUBLE_EQ(nest.fAfter, 5.0);
    EXPECT_EQ(nest.unrollDegree, 4);
    EXPECT_EQ(nest.innerUnrollDegree, 2);
    EXPECT_EQ(nest.fusedLoops, 1);
    EXPECT_EQ(nest.scalarsReplaced, 3);
    EXPECT_TRUE(nest.postludeInterchanged);
    EXPECT_EQ(nest.note, "jammed 2 levels up; \"quoted\"\nand a newline");

    EXPECT_EQ(parsed.leadingRefIds, (std::vector<int>{3, 1, 4}));

    ASSERT_EQ(parsed.passes.size(), 2u);
    EXPECT_EQ(parsed.passes[0].pass, "cluster");
    EXPECT_DOUBLE_EQ(parsed.passes[0].wallMs, 1.25);
    EXPECT_EQ(parsed.passes[0].actions, 2);
    EXPECT_FALSE(parsed.passes[0].skipped);
    EXPECT_EQ(parsed.passes[0].detail, "note");
    EXPECT_TRUE(parsed.passes[1].skipped);

    ASSERT_EQ(parsed.verifyFailures.size(), 1u);
    EXPECT_EQ(parsed.verifyFailures[0].pass, "cluster");
    EXPECT_EQ(parsed.verifyFailures[0].what, "checksum mismatch");

    // And the rendering agrees after the round-trip.
    EXPECT_EQ(parsed.toString(), report.toString());
    EXPECT_EQ(parsed.toJson(), report.toJson());
}

TEST(Reports, FromJsonRejectsGarbage)
{
    PipelineReport out;
    EXPECT_FALSE(PipelineReport::fromJson("", out));
    EXPECT_FALSE(PipelineReport::fromJson("{", out));
    EXPECT_FALSE(PipelineReport::fromJson("[1, 2]", out));
    EXPECT_FALSE(PipelineReport::fromJson("{\"nests\": [3]}", out));
}

// ---------------------------------------------------------------------
// The default pipeline vs the legacy entry point.
// ---------------------------------------------------------------------

TEST(PipelineRun, DefaultPipelineMatchesApplyClustering)
{
    Kernel via_driver = twinSweeps(64);
    Kernel via_pipeline = twinSweeps(64);
    DriverParams params;
    params.lp = 10;

    const auto report_driver = applyClustering(via_driver, params);

    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(pipelineSpecFromParams(params),
                                pipeline, error))
        << error;
    const auto report_pipeline = pipeline.run(via_pipeline, params);

    EXPECT_EQ(via_driver.toString(), via_pipeline.toString());
    EXPECT_EQ(report_driver.toString(), report_pipeline.toString());
    EXPECT_EQ(report_driver.leadingRefIds, report_pipeline.leadingRefIds);
}

TEST(PipelineRun, RecordsPerPassTimings)
{
    Kernel k = twinSweeps(64);
    DriverParams params;
    params.lp = 10;
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(defaultPipelineSpec(), pipeline, error));
    const auto report = pipeline.run(k, params);
    ASSERT_EQ(report.passes.size(), 5u);
    for (const auto &pass : report.passes) {
        EXPECT_FALSE(pass.pass.empty());
        EXPECT_GE(pass.wallMs, 0.0);
    }
    EXPECT_TRUE(report.verifyFailures.empty());
}

TEST(PipelineRun, PrefetchOnlyPipeline)
{
    Kernel base = twinSweeps(48);
    Kernel k = base.clone();
    DriverParams params;
    params.prefetchDistanceLines = 2;
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse("prefetch", pipeline, error));
    const auto report = pipeline.run(k, params);
    ASSERT_EQ(report.passes.size(), 1u);
    EXPECT_GT(report.passes[0].actions, 0);
    EXPECT_TRUE(report.nests.empty());
    int prefetches = 0;
    for (const auto &stmt : k.body)
        walkStmts(*stmt, [&](Stmt &s) {
            prefetches += s.kind == Stmt::Kind::Prefetch;
        });
    EXPECT_EQ(prefetches, report.passes[0].actions);
}

// ---------------------------------------------------------------------
// The IR verifier.
// ---------------------------------------------------------------------

TEST(Verify, AcceptsWellFormedKernel)
{
    Kernel k = twinSweeps();
    EXPECT_EQ(ir::verify(k), "");
}

TEST(Verify, CatchesAliasedSubtree)
{
    Kernel k = twinSweeps();
    // Alias the first loop's first statement into the second loop.
    k.body[1]->body.push_back(StmtPtr(k.body[0]->body[0].get()));
    const std::string error = ir::verify(k);
    EXPECT_NE(error.find("aliased"), std::string::npos) << error;
    // Drop the alias without double-freeing.
    (void)k.body[1]->body.back().release();
    k.body[1]->body.pop_back();
}

TEST(Verify, CatchesZeroStep)
{
    Kernel k = twinSweeps();
    k.body[0]->step = 0;
    EXPECT_NE(ir::verify(k).find("zero step"), std::string::npos);
}

TEST(Verify, CatchesSubscriptArityMismatch)
{
    Kernel k = twinSweeps();
    // B[i] -> B[i][i]: one subscript too many for a 1-D array.
    Expr *ref = nullptr;
    walkExprs(*k.body[0]->body[0], [&](Expr &e) {
        if (e.kind == Expr::Kind::ArrayRef && ref == nullptr)
            ref = &e;
    });
    ASSERT_NE(ref, nullptr);
    ref->children.push_back(varref("i"));
    EXPECT_NE(ir::verify(k).find("subscripts"), std::string::npos);
}

TEST(Verify, CatchesForeignArray)
{
    Kernel k = twinSweeps();
    Kernel other = twinSweeps();
    Expr *ref = nullptr;
    walkExprs(*k.body[0]->body[0], [&](Expr &e) {
        if (e.kind == Expr::Kind::ArrayRef && ref == nullptr)
            ref = &e;
    });
    ASSERT_NE(ref, nullptr);
    ref->array = &other.arrays.front();
    const std::string error = ir::verify(k);
    EXPECT_NE(error.find("not owned"), std::string::npos) << error;
    ref->array = &k.arrays.front();
}

TEST(Verify, CatchesShadowedLoopVariable)
{
    Kernel k = twinSweeps();
    std::vector<StmtPtr> inner;
    inner.push_back(assign(varref("t"), iconst(1)));
    k.body[0]->body.push_back(
        forLoop("i", iconst(0), iconst(4), std::move(inner)));
    EXPECT_NE(ir::verify(k).find("shadows"), std::string::npos);
}

TEST(Verify, RefIdOptions)
{
    Kernel k = twinSweeps();
    Expr *ref = nullptr;
    walkExprs(*k.body[0]->body[0], [&](Expr &e) {
        if (e.kind == Expr::Kind::ArrayRef && ref == nullptr)
            ref = &e;
    });
    ASSERT_NE(ref, nullptr);
    const int saved = ref->refId;
    ref->refId = -1;
    EXPECT_NE(ir::verify(k).find("refId"), std::string::npos);
    ir::VerifyOptions relaxed;
    relaxed.requireRefIds = false;
    EXPECT_EQ(ir::verify(k, relaxed), "");
    // Dense check: re-number one ref far away to leave a gap.
    ref->refId = saved + 100;
    ir::VerifyOptions dense;
    dense.requireDenseRefIds = true;
    EXPECT_NE(ir::verify(k, dense).find("dense"), std::string::npos);
    ref->refId = saved;
    EXPECT_EQ(ir::verify(k, dense), "");
}

// ---------------------------------------------------------------------
// Fault injection: the per-pass verification must catch and name an
// illegal pass.
// ---------------------------------------------------------------------

/** An "optimization" that silently drops the last loop iteration. */
class EvilTruncatePass : public Pass
{
  public:
    const char *name() const override { return "evil-truncate"; }

    void
    run(ir::Kernel &kernel, PassContext &ctx, PassReport &pr) const
        override
    {
        (void)ctx;
        for (auto &stmt : kernel.body) {
            if (stmt->kind != Stmt::Kind::Loop ||
                stmt->hi->kind != Expr::Kind::IntConst)
                continue;
            stmt->hi = iconst(stmt->hi->ival - 1);
            ++pr.actions;
            return;
        }
    }
};

/** A structurally broken pass: zeroes a loop step. */
class EvilZeroStepPass : public Pass
{
  public:
    const char *name() const override { return "evil-zero-step"; }

    void
    run(ir::Kernel &kernel, PassContext &ctx, PassReport &pr) const
        override
    {
        (void)ctx;
        for (auto &stmt : kernel.body) {
            if (stmt->kind != Stmt::Kind::Loop)
                continue;
            stmt->step = 0;
            ++pr.actions;
            return;
        }
    }
};

void
registerEvilPasses()
{
    static bool once = [] {
        PassRegistry::instance().add(
            std::make_unique<EvilTruncatePass>());
        PassRegistry::instance().add(
            std::make_unique<EvilZeroStepPass>());
        return true;
    }();
    (void)once;
}

TEST(FaultInjection, EquivalenceCheckNamesTheFailingPass)
{
    registerEvilPasses();
    Kernel k = twinSweeps(32);
    DriverParams params;
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(
        Pipeline::parse("fuse,evil-truncate,prefetch", pipeline, error))
        << error;
    pipeline.verifyMode = VerifyMode::Record;
    const auto report = pipeline.run(k, params);
    ASSERT_EQ(report.verifyFailures.size(), 1u);
    EXPECT_EQ(report.verifyFailures[0].pass, "evil-truncate");
    EXPECT_NE(report.verifyFailures[0].what.find("equivalence"),
              std::string::npos)
        << report.verifyFailures[0].what;
    // The pipeline stopped at the bad pass: prefetch never ran.
    ASSERT_EQ(report.passes.size(), 2u);
    EXPECT_EQ(report.passes.back().pass, "evil-truncate");
}

TEST(FaultInjection, StructuralCheckNamesTheFailingPass)
{
    registerEvilPasses();
    Kernel k = twinSweeps(32);
    DriverParams params;
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse("evil-zero-step", pipeline, error))
        << error;
    pipeline.verifyMode = VerifyMode::Record;
    const auto report = pipeline.run(k, params);
    ASSERT_EQ(report.verifyFailures.size(), 1u);
    EXPECT_EQ(report.verifyFailures[0].pass, "evil-zero-step");
    EXPECT_NE(report.verifyFailures[0].what.find("zero step"),
              std::string::npos)
        << report.verifyFailures[0].what;
}

TEST(FaultInjection, HonestPipelineRecordsNoFailures)
{
    Kernel k = twinSweeps(32);
    DriverParams params;
    Pipeline pipeline;
    std::string error;
    ASSERT_TRUE(Pipeline::parse(defaultPipelineSpec(), pipeline, error));
    pipeline.verifyMode = VerifyMode::Record;
    const auto report = pipeline.run(k, params);
    EXPECT_TRUE(report.verifyFailures.empty());
}

TEST(FaultInjectionDeathTest, PanicModeNamesTheFailingPass)
{
    registerEvilPasses();
    EXPECT_DEATH(
        {
            Kernel k = twinSweeps(32);
            DriverParams params;
            Pipeline pipeline;
            std::string error;
            if (!Pipeline::parse("evil-truncate", pipeline, error))
                std::abort();
            setenv("MPC_VERIFY_DUMP", "/dev/null", 1);
            pipeline.verifyMode = VerifyMode::Panic;
            (void)pipeline.run(k, params);
        },
        "evil-truncate");
}

} // namespace
} // namespace mpc::transform
