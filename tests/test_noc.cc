/**
 * @file
 * Unit tests for the interconnect transports: mesh geometry, XY
 * routing latency, link contention, and the shared SMP bus.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace mpc::noc
{
namespace
{

MeshConfig
cfg()
{
    MeshConfig c;
    c.flitBytes = 8;
    c.cpuCyclesPerNetCycle = 2;
    c.hopDelayNetCycles = 2;
    return c;
}

TEST(Mesh, GeometryFactorizations)
{
    EXPECT_EQ(Mesh(16, cfg()).width(), 4);
    EXPECT_EQ(Mesh(16, cfg()).height(), 4);
    EXPECT_EQ(Mesh(8, cfg()).width(), 4);
    EXPECT_EQ(Mesh(8, cfg()).height(), 2);
    EXPECT_EQ(Mesh(1, cfg()).width(), 1);
    EXPECT_EQ(Mesh(7, cfg()).width(), 7);  // prime: a line
}

TEST(Mesh, HopCounts)
{
    Mesh mesh(16, cfg());
    EXPECT_EQ(mesh.hopCount(0, 0), 0);
    EXPECT_EQ(mesh.hopCount(0, 3), 3);    // same row
    EXPECT_EQ(mesh.hopCount(0, 12), 3);   // same column
    EXPECT_EQ(mesh.hopCount(0, 15), 6);   // opposite corner
    EXPECT_EQ(mesh.hopCount(5, 10), 2);
}

TEST(Mesh, LatencyScalesWithDistance)
{
    Mesh mesh(16, cfg());
    const Tick t1 = mesh.send(0, 0, 1, 1);
    Mesh mesh2(16, cfg());
    const Tick t6 = mesh2.send(0, 0, 15, 1);
    EXPECT_GT(t6, t1);
    // Per hop: serialization (1 flit x 2 cpu/net) + hop delay (2 net
    // cycles x 2) = 6 cpu cycles.
    EXPECT_EQ(t1, 6u);
    EXPECT_EQ(t6, 36u);
}

TEST(Mesh, SelfSendIsFree)
{
    Mesh mesh(16, cfg());
    EXPECT_EQ(mesh.send(100, 3, 3, 9), 100u);
}

TEST(Mesh, DataMessagesCostMoreThanControl)
{
    Mesh a(16, cfg()), b(16, cfg());
    const Tick ctrl = a.send(0, 0, 15, Transport::controlFlits);
    const Tick data = b.send(0, 0, 15, Transport::dataFlits(64, 8));
    EXPECT_GT(data, ctrl);
}

TEST(Mesh, LinkContentionSerializes)
{
    // Two messages over the same first link: the second waits for the
    // first one's serialization on that link.
    Mesh mesh(16, cfg());
    const Tick first = mesh.send(0, 0, 3, 9);
    const Tick second = mesh.send(0, 0, 3, 9);
    EXPECT_GT(second, first);
    // Disjoint paths do not contend.
    Mesh mesh2(16, cfg());
    const Tick up = mesh2.send(0, 0, 3, 9);
    const Tick down = mesh2.send(0, 12, 15, 9);
    EXPECT_EQ(up, down);
}

TEST(Mesh, TracksLinkBusy)
{
    Mesh mesh(16, cfg());
    EXPECT_EQ(mesh.totalLinkBusy(), 0u);
    mesh.send(0, 0, 15, 9);
    EXPECT_GT(mesh.totalLinkBusy(), 0u);
}

TEST(SharedBus, SerializesEverything)
{
    SharedBusConfig cfg;
    cfg.busWidthBytes = 8;
    cfg.cpuCyclesPerBusCycle = 3;
    cfg.arbCycles = 1;
    SharedBus bus(cfg);
    // Even disjoint node pairs share the bus.
    const Tick a = bus.send(0, 0, 1, 2);   // (1 arb + 2 flits) * 3 = 9
    EXPECT_EQ(a, 9u);
    const Tick b = bus.send(0, 2, 3, 2);
    EXPECT_EQ(b, 18u);
    EXPECT_EQ(bus.busyTicks(), 18u);
}

TEST(Transport, FlitAccounting)
{
    EXPECT_EQ(Transport::controlFlits, 1);
    EXPECT_EQ(Transport::dataFlits(64, 8), 9);   // header + 8 payload
    EXPECT_EQ(Transport::dataFlits(32, 8), 5);
}

} // namespace
} // namespace mpc::noc
