/**
 * @file
 * Unit tests for the loop-nest IR: construction, cloning, layout,
 * refId assignment, printing, and tree walking.
 */

#include <gtest/gtest.h>

#include "ir/eval.hh"
#include "ir/kernel.hh"

namespace mpc::ir
{
namespace
{

Kernel
matrixTraversal()
{
    // Figure 2(a): for j, for i: A[j,i] = A[j,i] + 1  (row-major,
    // i innermost -> spatial locality, minimal clustering).
    Kernel k;
    k.name = "fig2a";
    Array *a = k.addArray("A", ScalType::F64, {64, 64});
    std::vector<StmtPtr> inner_body;
    inner_body.push_back(assign(
        aref(a, [] {
            std::vector<ExprPtr> subs;
            subs.push_back(varref("j"));
            subs.push_back(varref("i"));
            return subs;
        }()),
        add(aref(a, [] {
            std::vector<ExprPtr> subs;
            subs.push_back(varref("j"));
            subs.push_back(varref("i"));
            return subs;
        }()), fconst(1.0))));
    std::vector<StmtPtr> outer_body;
    outer_body.push_back(forLoop("i", iconst(0), iconst(64),
                                 std::move(inner_body)));
    k.body.push_back(forLoop("j", iconst(0), iconst(64),
                             std::move(outer_body)));
    return k;
}

TEST(Array, LinearIndexRowMajor)
{
    Array a{"A", ScalType::F64, {4, 8}, 0x1000};
    EXPECT_EQ(a.linearIndex({0, 0}), 0);
    EXPECT_EQ(a.linearIndex({0, 7}), 7);
    EXPECT_EQ(a.linearIndex({1, 0}), 8);
    EXPECT_EQ(a.linearIndex({3, 5}), 29);
    EXPECT_EQ(a.addrOf({1, 0}), 0x1000u + 64u);
    EXPECT_EQ(a.sizeBytes(), 4u * 8u * 8u);
}

TEST(Kernel, BuildAndPrint)
{
    Kernel k = matrixTraversal();
    const std::string s = k.toString();
    EXPECT_NE(s.find("for (j = 0; j < 64; j += 1)"), std::string::npos);
    EXPECT_NE(s.find("A[j][i]"), std::string::npos);
}

TEST(Kernel, AssignRefIdsStable)
{
    Kernel k = matrixTraversal();
    const int count = assignRefIds(k);
    EXPECT_EQ(count, 2);  // write A[j,i] and read A[j,i]
    // Idempotent.
    EXPECT_EQ(assignRefIds(k), 2);
    // Clone preserves ids.
    Kernel c = k.clone();
    std::vector<int> ids;
    for (auto &stmt : c.body)
        walkExprs(*stmt, [&](const Expr &e) {
            if (e.isMemRef())
                ids.push_back(e.refId);
        });
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<int>{0, 1}));
}

TEST(Kernel, CloneIsDeepAndRemapsArrays)
{
    Kernel k = matrixTraversal();
    assignRefIds(k);
    layoutArrays(k);
    Kernel c = k.clone();
    // Mutating the clone must not touch the original.
    c.body[0]->step = 5;
    EXPECT_EQ(k.body[0]->step, 1);
    // Array pointers in the clone must point into the clone.
    walkExprs(*c.body[0], [&](const Expr &e) {
        if (e.kind == Expr::Kind::ArrayRef) {
            EXPECT_EQ(e.array, c.findArray("A"));
        }
    });
    EXPECT_NE(c.findArray("A"), k.findArray("A"));
    EXPECT_EQ(c.findArray("A")->base, k.findArray("A")->base);
}

TEST(Kernel, LayoutAlignsAndSeparates)
{
    Kernel k;
    k.addArray("X", ScalType::F64, {100});
    k.addArray("Y", ScalType::F64, {100});
    layoutArrays(k, 0x1000, 64, 4096);
    const Array *x = k.findArray("X");
    const Array *y = k.findArray("Y");
    EXPECT_EQ(x->base % 64, 0u);
    EXPECT_EQ(y->base % 64, 0u);
    EXPECT_GE(y->base, x->base + x->sizeBytes() + 4096);
}

TEST(Kernel, PtrLoopCarriesAdvanceRef)
{
    Kernel k;
    k.declareScalar("p", ScalType::I64);
    std::vector<StmtPtr> body;
    body.push_back(assign(varref("s"),
                          add(varref("s"), deref(varref("p"), 8))));
    k.body.push_back(ptrLoop("p", iconst(0x1000), 0, std::move(body)));
    const int ids = assignRefIds(k);
    EXPECT_EQ(ids, 2);  // the data deref and the advance deref
    EXPECT_NE(k.body[0]->rhs, nullptr);
    EXPECT_EQ(k.body[0]->rhs->kind, Expr::Kind::Deref);
}

TEST(Kernel, WalkStmtsVisitsNested)
{
    Kernel k = matrixTraversal();
    int loops = 0, assigns = 0;
    walkStmts(*k.body[0], [&](const Stmt &s) {
        loops += s.kind == Stmt::Kind::Loop;
        assigns += s.kind == Stmt::Kind::Assign;
    });
    EXPECT_EQ(loops, 2);
    EXPECT_EQ(assigns, 1);
}

TEST(Expr, ToStringForms)
{
    EXPECT_EQ(iconst(5)->toString(), "5");
    EXPECT_EQ(varref("x")->toString(), "x");
    EXPECT_EQ(add(varref("a"), iconst(1))->toString(), "(a + 1)");
    EXPECT_EQ(minx(varref("a"), varref("b"))->toString(), "min(a, b)");
    EXPECT_EQ(deref(varref("p"), 16)->toString(), "*(p + 16)");
}


TEST(Eval, WhileLoopRunsUntilZero)
{
    // while (n != 0) { s = s + n; n = n - 1 }
    Kernel k;
    k.declareScalar("n", ScalType::I64);
    k.declareScalar("s", ScalType::I64);
    k.body.push_back(assign(varref("n"), iconst(5)));
    std::vector<StmtPtr> body;
    body.push_back(assign(varref("s"), add(varref("s"), varref("n"))));
    body.push_back(assign(varref("n"), sub(varref("n"), iconst(1))));
    k.body.push_back(whileLoop(varref("n"), std::move(body)));
    kisa::MemoryImage mem;
    Evaluator ev(k, mem);
    ev.run();
    EXPECT_EQ(ev.intVar("s"), 15);
    EXPECT_EQ(ev.intVar("n"), 0);
}

TEST(Eval, MinMaxModOperators)
{
    Kernel k;
    k.declareScalar("a", ScalType::I64);
    k.declareScalar("b", ScalType::F64);
    k.body.push_back(assign(
        varref("a"), modx(iconst(17), minx(iconst(5), iconst(9)))));
    k.body.push_back(assign(
        varref("b"), bin(BinOp::Max, fconst(2.5), fconst(-1.0))));
    kisa::MemoryImage mem;
    Evaluator ev(k, mem);
    ev.run();
    EXPECT_EQ(ev.intVar("a"), 17 % 5);
    EXPECT_DOUBLE_EQ(ev.fpVar("b"), 2.5);
}

TEST(Eval, TruncConvertsFloatToInt)
{
    Kernel k;
    k.declareScalar("c", ScalType::I64);
    k.body.push_back(assign(
        varref("c"), un(UnOp::Trunc, mul(fconst(3.9), fconst(2.0)))));
    kisa::MemoryImage mem;
    Evaluator ev(k, mem);
    ev.run();
    EXPECT_EQ(ev.intVar("c"), 7);
}

TEST(Eval, PrefetchIsArchitecturalNoop)
{
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {8});
    std::vector<ExprPtr> subs;
    subs.push_back(iconst(2));
    k.body.push_back(prefetch(aref(x, std::move(subs))));
    layoutArrays(k);
    kisa::MemoryImage mem;
    mem.stF64(x->base + 16, 9.0);
    Evaluator ev(k, mem);
    ev.run();
    EXPECT_DOUBLE_EQ(mem.ldF64(x->base + 16), 9.0);
}

TEST(Print, WhileAndPrefetchRender)
{
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {8});
    std::vector<ExprPtr> subs;
    subs.push_back(varref("i"));
    std::vector<StmtPtr> body;
    body.push_back(prefetch(aref(x, std::move(subs))));
    k.body.push_back(whileLoop(varref("i"), std::move(body)));
    const std::string s = k.toString();
    EXPECT_NE(s.find("while (i != 0)"), std::string::npos);
    EXPECT_NE(s.find("prefetch x[i]"), std::string::npos);
}

TEST(Print, DownwardLoopRendersDirection)
{
    Kernel k;
    std::vector<StmtPtr> body;
    body.push_back(assign(varref("s"), varref("i")));
    k.body.push_back(forLoop("i", iconst(9), iconst(-1),
                             std::move(body), -1));
    EXPECT_NE(k.toString().find("i > -1"), std::string::npos);
}

TEST(ExprDeath, AssignToNonLvalue)
{
    EXPECT_DEATH({ auto s = assign(iconst(3), iconst(4)); (void)s; },
                 "lvalue");
}

} // namespace
} // namespace mpc::ir
