/**
 * @file
 * Integration tests for the pipeline autotuner (harness/autotune.hh):
 * candidate-grid shape, cache-key stability, determinism of repeated
 * tunes, and the zero-resimulation guarantee of a warm cache.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/autotune.hh"
#include "harness/job.hh"
#include "harness/store.hh"
#include "transform/driver.hh"
#include "transform/pipeline.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

workloads::SizeParams
tinySize()
{
    workloads::SizeParams size;
    size.scale = 1;
    return size;
}

TuneOptions
uniOptions()
{
    TuneOptions opts;
    opts.procs = 1;
    opts.simBudget = 3;
    opts.threads = 2;
    opts.scale = 1;
    return opts;
}

/** Store entry files under @p dir, excluding the quarantine/ area. */
std::vector<std::filesystem::path>
storeEntries(const std::string &dir)
{
    std::vector<std::filesystem::path> files;
    const std::filesystem::path quarantine =
        std::filesystem::path(dir) / "quarantine";
    for (auto it =
             std::filesystem::recursive_directory_iterator(dir);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
        if (it->path() == quarantine) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() &&
            it->path().extension() == ".json")
            files.push_back(it->path());
    }
    return files;
}

TEST(Fnv1a, MatchesReferenceVectorsAndSeparatesInputs)
{
    // Canonical FNV-1a test vectors.
    EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
    EXPECT_NE(fnv1a("abc"), fnv1a("acb"));
}

TEST(CandidateSpecs, HandSpecFirstAndGridIsDeduplicated)
{
    const transform::DriverParams params;
    const auto specs = candidateSpecs(params);
    ASSERT_FALSE(specs.empty());
    EXPECT_EQ(specs[0], transform::pipelineSpecFromParams(params));
    for (size_t i = 0; i < specs.size(); ++i) {
        // Every candidate must parse under the knob grammar...
        transform::Pipeline parsed;
        std::string error;
        EXPECT_TRUE(
            transform::Pipeline::parse(specs[i], parsed, error))
            << specs[i] << ": " << error;
        // ...and appear exactly once.
        for (size_t j = i + 1; j < specs.size(); ++j)
            EXPECT_NE(specs[i], specs[j]);
    }
    EXPECT_GE(specs.size(), 8u);
}

TEST(CacheKey, TuneMeasurementsKeyLikeAnyOtherJob)
{
    // The tuner's cache lives in the shared ResultStore, keyed by the
    // same jobKeyFor() composition every farm job uses — so a tune and
    // a sweep of the same (workload, config, spec) share results.
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    RunSpec spec;
    spec.pipeline = "fuse,cluster(maxDegree=8)";

    const std::string key = jobKeyFor(w, spec, 1);
    EXPECT_EQ(key, jobKeyFor(w, spec, 1));
    EXPECT_TRUE(ResultStore::validKey(key));

    // Any ingredient change must move the key.
    RunSpec other = spec;
    other.procs = 2;
    EXPECT_NE(key, jobKeyFor(w, other, 1));
    other = spec;
    other.pipeline = "fuse,cluster(maxDegree=4)";
    EXPECT_NE(key, jobKeyFor(w, other, 1));
    other = spec;
    other.maxCycles = Tick(1) << 20;
    EXPECT_NE(key, jobKeyFor(w, other, 1));
    EXPECT_NE(key, jobKeyFor(workloads::makeFft(tinySize()), spec, 1));
}

TEST(Tune, WinnerMeasuredAndNoWorseThanHandSpec)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    const TuneReport report = tune(w, uniOptions());
    ASSERT_NE(report.best(), nullptr);
    EXPECT_GT(report.baseCycles, 0u);
    EXPECT_GT(report.handCycles, 0u);
    EXPECT_TRUE(report.best()->measured);
    EXPECT_FALSE(report.best()->failed);
    EXPECT_LE(report.best()->cycles, report.handCycles);
    // The hand spec itself is always measured, never pruned.
    bool hand_measured = false;
    for (const auto &c : report.candidates)
        if (c.spec == report.handSpec)
            hand_measured = c.measured && !c.pruned;
    EXPECT_TRUE(hand_measured);
}

TEST(Tune, RepeatedTunesAreDeterministic)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    const TuneOptions opts = uniOptions();
    const TuneReport a = tune(w, opts);
    const TuneReport b = tune(w, opts);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.bestIndex, b.bestIndex);
}

TEST(Tune, WarmCacheServesEveryMeasurementWithIdenticalReport)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    TuneOptions opts = uniOptions();
    opts.cacheDir = testing::TempDir() + "mpctune_cache";
    std::filesystem::remove_all(opts.cacheDir);

    const TuneReport cold = tune(w, opts);
    EXPECT_EQ(cold.cacheHits, 0);
    EXPECT_GT(cold.cacheMisses, 0);

    const TuneReport warm = tune(w, opts);
    EXPECT_EQ(warm.cacheMisses, 0);
    EXPECT_EQ(warm.cacheHits, cold.cacheMisses);
    // Cache state must be invisible in the report output.
    EXPECT_EQ(warm.toString(), cold.toString());
    EXPECT_EQ(warm.toJson(), cold.toJson());

    std::filesystem::remove_all(opts.cacheDir);
}

TEST(Tune, StoreEntriesCarryByteStableManifestProvenance)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    TuneOptions opts = uniOptions();
    opts.cacheDir = testing::TempDir() + "mpctune_manifest_cache";
    std::filesystem::remove_all(opts.cacheDir);
    tune(w, opts);

    // The producing run's manifest hashes the config the simulator
    // actually ran: opts.config scaled to the workload's input.
    const std::string expect_hash =
        json::hex64(configHash(scaleConfig(opts.config, w), 1));
    int entries = 0;
    for (const auto &path : storeEntries(opts.cacheDir)) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        json::Value root;
        ASSERT_TRUE(json::parse(ss.str(), root)) << path;
        EXPECT_EQ(json::strField(root, "schema"), "mpc-jobresult-v1");
        const json::Value *man = root.field("manifest");
        ASSERT_NE(man, nullptr) << path;
        EXPECT_EQ(json::strField(*man, "schema"), "mpc-manifest-v1");
        EXPECT_EQ(json::strField(*man, "workload"), w.name);
        // Host must be blanked: store entries are byte-stable across
        // machines.
        EXPECT_EQ(json::strField(*man, "host"), "");
        EXPECT_EQ(json::strField(*man, "configHash"), expect_hash);
        EXPECT_FALSE(json::strField(*man, "execTier").empty());
        EXPECT_FALSE(json::strField(*man, "kernelHash").empty());
        ++entries;
    }
    EXPECT_GT(entries, 0);
    std::filesystem::remove_all(opts.cacheDir);
}

TEST(Tune, CorruptedStoreEntryIsQuarantinedAndRepairedNotFatal)
{
    // Satellite regression: a truncated or hand-edited cache entry
    // used to reach the JSON parser unguarded. Under ResultStore it
    // must read as a miss, get quarantined, and be re-simulated —
    // with the report still byte-identical.
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    TuneOptions opts = uniOptions();
    opts.cacheDir = testing::TempDir() + "mpctune_corrupt_cache";
    std::filesystem::remove_all(opts.cacheDir);

    const TuneReport cold = tune(w, opts);
    const auto entries = storeEntries(opts.cacheDir);
    ASSERT_FALSE(entries.empty());
    {
        // Truncate one entry mid-token; hand-edit another into valid
        // JSON of the wrong shape.
        std::ofstream truncated(entries.front(), std::ios::trunc);
        truncated << "{\"schema\": \"mpc-jobresult-v1\", \"ok\": tru";
    }
    if (entries.size() > 1) {
        std::ofstream edited(entries.back(), std::ios::trunc);
        edited << "{\"schema\": \"something-else\"}\n";
    }

    const TuneReport repaired = tune(w, opts);
    EXPECT_EQ(repaired.toString(), cold.toString());
    EXPECT_EQ(repaired.toJson(), cold.toJson());
    // The damaged entries were misses (re-simulated), the rest hits.
    const int damaged = entries.size() > 1 ? 2 : 1;
    EXPECT_EQ(repaired.cacheMisses, damaged);
    EXPECT_EQ(repaired.cacheHits,
              static_cast<int>(entries.size()) - damaged);
    // Evidence preserved, slots repaired.
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(opts.cacheDir) / "quarantine"));
    const TuneReport warm = tune(w, opts);
    EXPECT_EQ(warm.cacheMisses, 0);

    std::filesystem::remove_all(opts.cacheDir);
}

} // namespace
} // namespace mpc::harness
