/**
 * @file
 * Integration tests for the pipeline autotuner (harness/autotune.hh):
 * candidate-grid shape, cache-key stability, determinism of repeated
 * tunes, and the zero-resimulation guarantee of a warm cache.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/autotune.hh"
#include "transform/driver.hh"
#include "transform/pipeline.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

workloads::SizeParams
tinySize()
{
    workloads::SizeParams size;
    size.scale = 1;
    return size;
}

TuneOptions
uniOptions()
{
    TuneOptions opts;
    opts.procs = 1;
    opts.simBudget = 3;
    opts.threads = 2;
    return opts;
}

TEST(Fnv1a, MatchesReferenceVectorsAndSeparatesInputs)
{
    // Canonical FNV-1a test vectors.
    EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
    EXPECT_NE(fnv1a("abc"), fnv1a("acb"));
}

TEST(CandidateSpecs, HandSpecFirstAndGridIsDeduplicated)
{
    const transform::DriverParams params;
    const auto specs = candidateSpecs(params);
    ASSERT_FALSE(specs.empty());
    EXPECT_EQ(specs[0], transform::pipelineSpecFromParams(params));
    for (size_t i = 0; i < specs.size(); ++i) {
        // Every candidate must parse under the knob grammar...
        transform::Pipeline parsed;
        std::string error;
        EXPECT_TRUE(
            transform::Pipeline::parse(specs[i], parsed, error))
            << specs[i] << ": " << error;
        // ...and appear exactly once.
        for (size_t j = i + 1; j < specs.size(); ++j)
            EXPECT_NE(specs[i], specs[j]);
    }
    EXPECT_GE(specs.size(), 8u);
}

TEST(CacheKey, StableAcrossCallsAndSensitiveToInputs)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    const sys::SystemConfig config = sys::baseConfig();
    const std::string spec = "fuse,cluster(maxDegree=8)";
    const Tick cap = Tick(1) << 36;

    const std::string name =
        cacheFileName(w.kernel, config, 1, spec, cap);
    EXPECT_EQ(name, cacheFileName(w.kernel, config, 1, spec, cap));
    EXPECT_EQ(name.rfind("tune_", 0), 0u) << name;
    EXPECT_EQ(name.substr(name.size() - 5), ".json");

    // Any ingredient change must move the key.
    EXPECT_NE(name, cacheFileName(w.kernel, config, 2, spec, cap));
    EXPECT_NE(name, cacheFileName(w.kernel, config, 1,
                                  "fuse,cluster(maxDegree=4)", cap));
    EXPECT_NE(name,
              cacheFileName(w.kernel, config, 1, spec, Tick(1) << 20));
    const workloads::Workload other = workloads::makeFft(tinySize());
    EXPECT_NE(name, cacheFileName(other.kernel, config, 1, spec, cap));
}

TEST(Tune, WinnerMeasuredAndNoWorseThanHandSpec)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    const TuneReport report = tune(w, uniOptions());
    ASSERT_NE(report.best(), nullptr);
    EXPECT_GT(report.baseCycles, 0u);
    EXPECT_GT(report.handCycles, 0u);
    EXPECT_TRUE(report.best()->measured);
    EXPECT_FALSE(report.best()->failed);
    EXPECT_LE(report.best()->cycles, report.handCycles);
    // The hand spec itself is always measured, never pruned.
    bool hand_measured = false;
    for (const auto &c : report.candidates)
        if (c.spec == report.handSpec)
            hand_measured = c.measured && !c.pruned;
    EXPECT_TRUE(hand_measured);
}

TEST(Tune, RepeatedTunesAreDeterministic)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    const TuneOptions opts = uniOptions();
    const TuneReport a = tune(w, opts);
    const TuneReport b = tune(w, opts);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.bestIndex, b.bestIndex);
}

TEST(Tune, WarmCacheServesEveryMeasurementWithIdenticalReport)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    TuneOptions opts = uniOptions();
    opts.cacheDir = testing::TempDir() + "mpctune_cache";
    std::filesystem::remove_all(opts.cacheDir);

    const TuneReport cold = tune(w, opts);
    EXPECT_EQ(cold.cacheHits, 0);
    EXPECT_GT(cold.cacheMisses, 0);

    const TuneReport warm = tune(w, opts);
    EXPECT_EQ(warm.cacheMisses, 0);
    EXPECT_EQ(warm.cacheHits, cold.cacheMisses);
    // Cache state must be invisible in the report output.
    EXPECT_EQ(warm.toString(), cold.toString());
    EXPECT_EQ(warm.toJson(), cold.toJson());

    std::filesystem::remove_all(opts.cacheDir);
}

TEST(Tune, CacheEntriesCarryByteStableManifestProvenance)
{
    const workloads::Workload w = workloads::makeEm3d(tinySize());
    TuneOptions opts = uniOptions();
    opts.cacheDir = testing::TempDir() + "mpctune_manifest_cache";
    std::filesystem::remove_all(opts.cacheDir);
    tune(w, opts);

    const std::string expect_hash =
        json::hex64(configHash(opts.config, 1));
    int entries = 0;
    for (const auto &ent :
         std::filesystem::directory_iterator(opts.cacheDir)) {
        std::ifstream in(ent.path());
        std::stringstream ss;
        ss << in.rdbuf();
        json::Value root;
        ASSERT_TRUE(json::parse(ss.str(), root)) << ent.path();
        const json::Value *man = root.field("manifest");
        ASSERT_NE(man, nullptr) << ent.path();
        EXPECT_EQ(json::strField(*man, "schema"), "mpc-manifest-v1");
        EXPECT_EQ(json::strField(*man, "workload"), w.name);
        // Host must be blanked: cache entries are byte-stable across
        // machines.
        EXPECT_EQ(json::strField(*man, "host"), "");
        EXPECT_EQ(json::strField(*man, "configHash"), expect_hash);
        EXPECT_FALSE(json::strField(*man, "execTier").empty());
        EXPECT_FALSE(json::strField(*man, "kernelHash").empty());
        ++entries;
    }
    EXPECT_GT(entries, 0);
    std::filesystem::remove_all(opts.cacheDir);
}

} // namespace
} // namespace mpc::harness
