/**
 * @file
 * Unit tests for the memory substrate: event queue, timeline resources,
 * MSHR file (coalescing + occupancy stats), cache hit/miss behaviour,
 * bank interleaving, and the two-level hierarchy.
 */

#include <array>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/eventq.hh"
#include "mem/hierarchy.hh"
#include "mem/mainmem.hh"
#include "mem/mshr.hh"

namespace mpc::mem
{
namespace
{

TEST(EventQueue, OrderedExecution)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(3); });  // same tick: FIFO
    eq.advanceTo(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, EventSchedulesEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { eq.schedule(2, [&] { ++fired; }); });
    eq.advanceTo(5);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, AdvancePartial)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.advanceTo(50);
    EXPECT_EQ(fired, 0);
    eq.advanceTo(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SameTickFifoProperty)
{
    // Property: any mix of delays lands in (when, scheduling-order)
    // sequence, including bursts on one tick and events crossing the
    // calendar-wheel horizon into the far-future heap.
    Rng rng(0xf1f0);
    EventQueue eq;
    std::vector<int> order;
    std::vector<Tick> when_of;      // indexed by id, in schedule order
    for (int round = 0; round < 50; ++round) {
        const Tick base = eq.now();
        const int burst = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < burst; ++i) {
            // Mix near (wheel) and far (heap) delays, with repeats.
            const Tick delta = rng.below(2) != 0 ? rng.below(12)
                                                 : 200 + rng.below(400);
            const int id = static_cast<int>(when_of.size());
            when_of.push_back(base + delta);
            eq.schedule(base + delta, [&order, id] {
                order.push_back(id);
            });
        }
        eq.advanceTo(base + rng.below(64)); // partial drains interleave
    }
    eq.advanceTo(eq.now() + 1000);

    // Every event fires exactly once, in (when, scheduling-order)
    // sequence: events fire at their tick and time is monotonic, so
    // the observed (when, id) pairs must be strictly increasing.
    ASSERT_EQ(order.size(), when_of.size());
    std::vector<bool> seen(when_of.size(), false);
    for (std::size_t k = 0; k < order.size(); ++k) {
        const auto id = static_cast<std::size_t>(order[k]);
        ASSERT_FALSE(seen[id]);
        seen[id] = true;
        if (k > 0) {
            const auto prev = static_cast<std::size_t>(order[k - 1]);
            EXPECT_TRUE(when_of[prev] < when_of[id] ||
                        (when_of[prev] == when_of[id] && prev < id))
                << "event " << id << " fired out of order after "
                << prev;
        }
    }
}

TEST(EventQueue, WheelMatchesHeapOracleSweep)
{
    // Drive the calendar-wheel queue and the retained heap queue with
    // an identical randomized schedule (bursts, same-tick repeats,
    // horizon-crossing delays, events scheduling events) and require
    // the exact same execution order at every advance boundary.
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadull, 0xbeefull}) {
        Rng plan_a(seed), plan_b(seed);
        EventQueue wheel;
        HeapEventQueue heap;
        std::vector<int> order_a, order_b;

        auto drive = [](auto &q, Rng &rng, std::vector<int> &order) {
            int id = 0;
            for (int round = 0; round < 40; ++round) {
                const Tick base = q.now();
                const int burst = 1 + static_cast<int>(rng.below(6));
                for (int i = 0; i < burst; ++i) {
                    const Tick delta = rng.below(3) != 0
                                           ? rng.below(10)
                                           : 250 + rng.below(300);
                    const int chained = id++;
                    // Half the events reschedule a child, exercising
                    // schedule-during-run on both paths.
                    if (rng.below(2) != 0) {
                        const int child = id++;
                        q.schedule(base + delta,
                                   [&q, &order, chained, child] {
                                       order.push_back(chained);
                                       q.scheduleIn(5, [&order, child] {
                                           order.push_back(child);
                                       });
                                   });
                    } else {
                        q.schedule(base + delta, [&order, chained] {
                            order.push_back(chained);
                        });
                    }
                }
                q.advanceTo(base + rng.below(80));
            }
            q.advanceTo(q.now() + 2000);
        };

        drive(wheel, plan_a, order_a);
        drive(heap, plan_b, order_b);
        EXPECT_EQ(order_a, order_b) << "seed " << seed;
        EXPECT_EQ(wheel.now(), heap.now()) << "seed " << seed;
        EXPECT_TRUE(wheel.empty());
        EXPECT_TRUE(heap.empty());
    }
}

TEST(EventQueue, WheelHorizonBoundaryExact)
{
    // The wheel holds events with when < now + 256; an event exactly
    // 256 ticks ahead is the first to fall into the far heap. Schedule
    // straddling pairs at deltas 254..258 against the heap oracle and
    // require identical execution order either side of the boundary.
    EventQueue wheel;
    HeapEventQueue heap;
    std::vector<int> order_a, order_b;
    auto drive = [](auto &q, std::vector<int> &order) {
        int id = 0;
        // Interleave boundary deltas so (when, seq) order differs from
        // scheduling order: 258, 254, 257, 255, 256.
        for (const Tick delta : {258, 254, 257, 255, 256})
            q.schedule(q.now() + delta, [&order, ev = id++] {
                order.push_back(ev);
            });
        q.advanceTo(q.now() + 300);
        // Repeat from a non-zero now so "exactly at the horizon" is
        // measured against a moved origin.
        for (const Tick delta : {256, 255, 254, 257})
            q.schedule(q.now() + delta, [&order, ev = id++] {
                order.push_back(ev);
            });
        q.advanceTo(q.now() + 300);
    };
    drive(wheel, order_a);
    drive(heap, order_b);
    EXPECT_EQ(order_a, order_b);
    EXPECT_EQ(order_a, (std::vector<int>{1, 3, 4, 2, 0, 7, 6, 5, 8}));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventQueue, WheelWrapAround)
{
    // Slot index is when & 255: events scheduled just before a wheel
    // wrap land in low slots while now sits in high slots. Walk now up
    // to the wrap edge and schedule across it; order must match the
    // oracle and be strictly (when, seq)-sorted.
    EventQueue wheel;
    HeapEventQueue heap;
    std::vector<int> order_a, order_b;
    auto drive = [](auto &q, std::vector<int> &order) {
        int id = 0;
        q.advanceTo(250);   // six ticks before the first wrap at 256
        for (const Tick when : {251, 260, 255, 300, 256, 505, 270})
            q.schedule(when, [&order, ev = id++] {
                order.push_back(ev);
            });
        q.advanceTo(254);   // partial drain, still below the wrap
        for (const Tick when : {258, 509, 300})
            q.schedule(when, [&order, ev = id++] {
                order.push_back(ev);
            });
        q.advanceTo(600);
    };
    drive(wheel, order_a);
    drive(heap, order_b);
    EXPECT_EQ(order_a, order_b);
    EXPECT_EQ(order_a,
              (std::vector<int>{0, 2, 4, 7, 1, 6, 3, 9, 5, 8}));
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(wheel.now(), heap.now());
}

TEST(EventQueue, SameTickBurstStraddlesWheelHeapSplit)
{
    // One tick can hold events resident in the heap (scheduled while
    // the tick was beyond the horizon) and in the wheel (scheduled
    // after now moved close enough). The heap events carry strictly
    // lower sequence numbers, so the split must drain heap-first and
    // FIFO within each side.
    EventQueue wheel;
    HeapEventQueue heap;
    std::vector<int> order_a, order_b;
    auto drive = [](auto &q, std::vector<int> &order) {
        const Tick target = 300;
        int id = 0;
        for (int i = 0; i < 3; ++i)   // now=0: 300 is past the horizon
            q.schedule(target, [&order, ev = id++] {
                order.push_back(ev);
            });
        q.advanceTo(100);             // 300 now inside the horizon
        for (int i = 0; i < 3; ++i)
            q.schedule(target, [&order, ev = id++] {
                order.push_back(ev);
            });
        // A same-tick event appended *during* the burst must still run
        // this tick, after every pre-scheduled event.
        q.schedule(target, [&order, &q, target, late = id++] {
            order.push_back(late);
            q.schedule(target, [&order] { order.push_back(99); });
        });
        q.advanceTo(400);
    };
    drive(wheel, order_a);
    drive(heap, order_b);
    EXPECT_EQ(order_a, order_b);
    EXPECT_EQ(order_a, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 99}));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventQueue, OversizedCallableBoxed)
{
    // Captures beyond the inline buffer take the boxed std::function
    // path; order and execution must be unaffected.
    EventQueue eq;
    std::array<std::uint64_t, 12> big{};   // 96 bytes > inline buffer
    big[0] = 7;
    big[11] = 11;
    std::vector<std::uint64_t> got;
    eq.schedule(3, [&got] { got.push_back(1); });
    eq.schedule(3, [big, &got] { got.push_back(big[0] + big[11]); });
    eq.schedule(3, [&got] { got.push_back(2); });
    eq.advanceTo(3);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 18, 2}));
}

TEST(EventQueue, PendingEventsDestroyedOnTeardown)
{
    auto marker = std::make_shared<int>(42);
    std::weak_ptr<int> watch = marker;
    {
        EventQueue eq;
        eq.schedule(5, [marker] { (void)*marker; });
        eq.schedule(1000, [marker] { (void)*marker; });  // far heap
        marker.reset();
        EXPECT_FALSE(watch.expired());  // owned by pending events
    }
    EXPECT_TRUE(watch.expired());  // destructor released both
}

TEST(TimelineResource, SerializesOverlapping)
{
    TimelineResource r;
    EXPECT_EQ(r.reserve(10, 5), 10u);   // busy [10,15)
    EXPECT_EQ(r.reserve(12, 5), 15u);   // pushed back
    EXPECT_EQ(r.reserve(30, 5), 30u);   // idle gap respected
    EXPECT_EQ(r.busyTicks(), 15u);
}

TEST(Mshr, AllocateFindDeallocate)
{
    MshrFile m(2);
    EXPECT_FALSE(m.full());
    auto id = m.allocate(0, 0x1000, false);
    EXPECT_EQ(m.find(0x1000), id);
    EXPECT_EQ(m.find(0x2000), MshrFile::invalidId);
    EXPECT_EQ(m.occupancy(), 1);
    std::vector<MshrTarget> targets;
    m.deallocateInto(10, id, targets);
    EXPECT_EQ(m.occupancy(), 0);
    EXPECT_EQ(m.find(0x1000), MshrFile::invalidId);
}

TEST(Mshr, FullDetection)
{
    MshrFile m(2);
    m.allocate(0, 0x1000, false);
    m.allocate(0, 0x2000, false);
    EXPECT_TRUE(m.full());
}

TEST(Mshr, ReadOccupancyTracksLoadTargets)
{
    MshrFile m(4);
    auto id = m.allocate(0, 0x1000, false);
    EXPECT_EQ(m.readOccupancy(), 0);
    MshrTarget t;
    t.isLoad = false;
    m.addTarget(0, id, std::move(t));
    EXPECT_EQ(m.readOccupancy(), 0);
    MshrTarget t2;
    t2.isLoad = true;
    m.addTarget(0, id, std::move(t2));
    EXPECT_EQ(m.readOccupancy(), 1);
}

TEST(Mshr, OccupancyHistogramTimeWeighted)
{
    MshrFile m(4);
    // [0,100): 0 occupied. [100,300): 1 occupied. [300,400): 0.
    auto id = m.allocate(100, 0x40, false);
    MshrTarget t;
    t.isLoad = true;
    m.addTarget(100, id, std::move(t));
    std::vector<MshrTarget> targets;
    m.deallocateInto(300, id, targets);
    m.finalizeStats(400);
    const auto &h = m.totalHistogram();
    EXPECT_EQ(h.totalTicks(), 400u);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(1), 0.5);
    const auto &r = m.readHistogram();
    EXPECT_DOUBLE_EQ(r.fracAtLeast(1), 0.5);
}

TEST(BankInterleave, Sequential)
{
    EXPECT_EQ(bankOf(0, 4, Interleave::Sequential), 0);
    EXPECT_EQ(bankOf(5, 4, Interleave::Sequential), 1);
}

TEST(BankInterleave, PermutationCoversAllBanks)
{
    // Stride-1 lines must hit all banks cyclically; power-of-two strides
    // must not all collapse onto one bank (the point of permutation).
    std::vector<int> counts(4, 0);
    for (std::uint64_t i = 0; i < 64; ++i)
        ++counts[bankOf(i, 4, Interleave::Permutation)];
    for (int c : counts)
        EXPECT_EQ(c, 16);
    // Stride-4 (would alias bank 0 under sequential interleave):
    std::vector<int> strided(4, 0);
    for (std::uint64_t i = 0; i < 64; i += 4)
        ++strided[bankOf(i, 4, Interleave::Permutation)];
    int nonzero = 0;
    for (int c : strided)
        nonzero += c > 0;
    EXPECT_GT(nonzero, 1);
}

TEST(BankInterleave, SkewedSpreadsStride)
{
    std::vector<int> strided(4, 0);
    for (std::uint64_t i = 0; i < 64; i += 4)
        ++strided[bankOf(i, 4, Interleave::Skewed)];
    int nonzero = 0;
    for (int c : strided)
        nonzero += c > 0;
    EXPECT_GT(nonzero, 1);
}

// ---------------------------------------------------------------------
// Cache behaviour
// ---------------------------------------------------------------------

/** A scripted downstream that completes fills after a fixed delay. */
class FakeDownstream : public DownstreamPort
{
  public:
    FakeDownstream(EventQueue &eq, Tick delay) : eq_(eq), delay_(delay) {}

    bool
    request(Addr line_addr, bool exclusive,
            Continuation on_fill) override
    {
        ++requests;
        lastAddr = line_addr;
        lastExclusive = exclusive;
        if (rejectNext) {
            rejectNext = false;
            return false;
        }
        const Tick when = eq_.now() + delay_;
        eq_.schedule(when, [fn = std::move(on_fill), when]() mutable {
            fn(when);
        });
        return true;
    }

    void writeback(Addr) override { ++writebacks; }

    int requests = 0;
    int writebacks = 0;
    Addr lastAddr = 0;
    bool lastExclusive = false;
    bool rejectNext = false;

  private:
    EventQueue &eq_;
    Tick delay_;
};

struct CacheFixture : public ::testing::Test
{
    CacheFixture()
        : down(eq, 100)
    {
        cfg.name = "L2";
        cfg.sizeBytes = 1024;   // 16 sets x 64B, direct mapped
        cfg.assoc = 1;
        cfg.lineBytes = 64;
        cfg.numMshrs = 2;
        cfg.numPorts = 1;
        cfg.hitLatency = 10;
        cache = std::make_unique<Cache>(eq, cfg, false, true);
        cache->setDownstream(&down);
    }

    /** Issue a load and capture the completion tick. */
    Cache::Status
    load(Addr a, Tick *done = nullptr)
    {
        return cache->loadAccess(a, 0, [done](Tick t) {
            if (done)
                *done = t;
        });
    }

    EventQueue eq;
    CacheConfig cfg;
    FakeDownstream down;
    std::unique_ptr<Cache> cache;
};

TEST_F(CacheFixture, MissThenHit)
{
    Tick t1 = 0;
    EXPECT_EQ(load(0x1000, &t1), Cache::Status::Ok);
    eq.advanceTo(500);
    // Miss latency: 100 (downstream) + fill latency 1.
    EXPECT_EQ(t1, 101u);
    EXPECT_TRUE(cache->isResident(0x1000));

    Tick t2 = 0;
    EXPECT_EQ(load(0x1008, &t2), Cache::Status::Ok);  // same line
    eq.advanceTo(600);
    EXPECT_EQ(t2, 500u + 10u);  // hit latency
    EXPECT_EQ(cache->stats().loadHits, 1u);
    EXPECT_EQ(cache->stats().loadMisses, 1u);
}

TEST_F(CacheFixture, CoalescesSameLine)
{
    Tick t1 = 0, t2 = 0;
    EXPECT_EQ(load(0x2000, &t1), Cache::Status::Ok);
    eq.advanceTo(1);
    EXPECT_EQ(load(0x2010, &t2), Cache::Status::Ok);  // coalesce
    eq.advanceTo(500);
    EXPECT_EQ(down.requests, 1);  // one downstream fetch only
    EXPECT_EQ(cache->stats().loadCoalesced, 1u);
    EXPECT_EQ(t1, t2);  // both complete with the fill
}

TEST_F(CacheFixture, MshrFullRejects)
{
    EXPECT_EQ(load(0x1000), Cache::Status::Ok);
    eq.advanceTo(1);
    EXPECT_EQ(load(0x2000), Cache::Status::Ok);
    eq.advanceTo(2);
    EXPECT_EQ(load(0x3000), Cache::Status::RejectMshr);
    EXPECT_EQ(cache->stats().rejectsMshr, 1u);
    // After fills complete, accesses are accepted again.
    eq.advanceTo(300);
    EXPECT_EQ(load(0x3000), Cache::Status::Ok);
}

TEST_F(CacheFixture, PortLimitRejectsSameCycle)
{
    EXPECT_EQ(load(0x1000), Cache::Status::Ok);
    EXPECT_EQ(load(0x2000), Cache::Status::RejectPort);  // 1 port
    eq.advanceTo(1);
    EXPECT_EQ(load(0x2000), Cache::Status::Ok);  // next cycle fine
}

TEST_F(CacheFixture, DowstreamRetryAfterReject)
{
    down.rejectNext = true;
    Tick t1 = 0;
    EXPECT_EQ(load(0x1000, &t1), Cache::Status::Ok);
    eq.advanceTo(500);
    EXPECT_EQ(down.requests, 2);  // first rejected, retried
    EXPECT_GT(t1, 100u);
    EXPECT_TRUE(cache->isResident(0x1000));
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    // Write-allocate store miss to line A.
    bool store_done = false;
    cache->writeAccess(0x1000, 0, [&](Tick) { store_done = true; });
    eq.advanceTo(300);
    EXPECT_TRUE(store_done);
    EXPECT_EQ(cache->lineState(0x1000), LineState::Modified);

    // Load to the conflicting line (same set, 1KB apart cfg: 16 sets).
    Tick t = 0;
    load(0x1000 + 1024, &t);
    eq.advanceTo(600);
    EXPECT_EQ(down.writebacks, 1);
    EXPECT_FALSE(cache->isResident(0x1000));
}

TEST_F(CacheFixture, ExclusiveRequestForStoreMiss)
{
    cache->writeAccess(0x4000, 0, {});
    eq.advanceTo(1);
    EXPECT_TRUE(down.lastExclusive);
    Tick t = 0;
    load(0x5000, &t);
    eq.advanceTo(2);
    EXPECT_FALSE(down.lastExclusive);
}

TEST_F(CacheFixture, ProbeInvalidate)
{
    cache->writeAccess(0x1000, 0, {});
    eq.advanceTo(300);
    EXPECT_TRUE(cache->probeInvalidate(alignDown(0x1000, 64)));
    EXPECT_FALSE(cache->isResident(0x1000));
    EXPECT_FALSE(cache->probeInvalidate(alignDown(0x1000, 64)));
}

TEST_F(CacheFixture, ProbeDowngrade)
{
    cache->writeAccess(0x1000, 0, {});
    eq.advanceTo(300);
    EXPECT_TRUE(cache->probeDowngrade(alignDown(0x1000, 64)));
    EXPECT_EQ(cache->lineState(0x1000), LineState::Shared);
}

TEST(CacheCoherent, UpgradeOnWriteToShared)
{
    EventQueue eq;
    FakeDownstream down(eq, 50);
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 64;
    cfg.numMshrs = 4;
    cfg.numPorts = 2;
    cfg.hitLatency = 10;
    Cache cache(eq, cfg, /*coherent=*/true, /*write_allocate=*/true);
    cache.setDownstream(&down);

    // Load brings the line in Shared.
    cache.loadAccess(0x1000, 0, {});
    eq.advanceTo(200);
    EXPECT_EQ(cache.lineState(0x1000), LineState::Shared);

    // Store to the Shared line must fetch exclusive permission.
    bool done = false;
    cache.writeAccess(0x1000, 0, [&](Tick) { done = true; });
    eq.advanceTo(400);
    EXPECT_TRUE(done);
    EXPECT_TRUE(down.lastExclusive);
    EXPECT_EQ(cache.stats().upgrades, 1u);
    EXPECT_EQ(cache.lineState(0x1000), LineState::Modified);
}

TEST(CacheAssoc, LruReplacement)
{
    EventQueue eq;
    FakeDownstream down(eq, 10);
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 64;  // one set, 2-way
    cfg.assoc = 2;
    cfg.lineBytes = 64;
    cfg.numMshrs = 4;
    cfg.numPorts = 4;
    cfg.hitLatency = 1;
    Cache cache(eq, cfg, false, true);
    cache.setDownstream(&down);

    cache.loadAccess(0x0000, 0, {});
    eq.advanceTo(100);
    cache.loadAccess(0x1000, 0, {});
    eq.advanceTo(200);
    // Touch line 0 so line 0x1000 becomes LRU.
    cache.loadAccess(0x0000, 0, {});
    eq.advanceTo(300);
    cache.loadAccess(0x2000, 0, {});
    eq.advanceTo(400);
    EXPECT_TRUE(cache.isResident(0x0000));
    EXPECT_FALSE(cache.isResident(0x1000));
    EXPECT_TRUE(cache.isResident(0x2000));
}

// ---------------------------------------------------------------------
// MainMemory timing
// ---------------------------------------------------------------------

TEST(MainMemory, UncontendedReadLatency)
{
    EventQueue eq;
    MemBusConfig cfg;  // defaults: arb 1 bus cycle, 54 bank, 2 data cycles
    MainMemory mem(eq, cfg, 64);
    const Tick done = mem.readAccessAt(0, 0x1000);
    // 1*3 (request) + 54 (bank) + 2*3 (data) = 63
    EXPECT_EQ(done, 63u);
}

TEST(MainMemory, BankContentionSerializes)
{
    EventQueue eq;
    MemBusConfig cfg;
    cfg.interleave = Interleave::Sequential;
    MainMemory mem(eq, cfg, 64);
    // Two reads to the same bank (line indexes 0 and 4).
    const Tick d1 = mem.readAccessAt(0, 0);
    const Tick d2 = mem.readAccessAt(0, 4 * 64);
    EXPECT_GE(d2, d1 + cfg.bankAccessLatency);
}

TEST(MainMemory, DifferentBanksOverlap)
{
    EventQueue eq;
    MemBusConfig cfg;
    cfg.interleave = Interleave::Sequential;
    MainMemory mem(eq, cfg, 64);
    const Tick d1 = mem.readAccessAt(0, 0);
    const Tick d2 = mem.readAccessAt(0, 1 * 64);  // bank 1
    // Second read waits only for the bus phases, not the whole bank time.
    EXPECT_LT(d2, d1 + cfg.bankAccessLatency);
}

TEST(MainMemory, Utilizations)
{
    EventQueue eq;
    MemBusConfig cfg;
    MainMemory mem(eq, cfg, 64);
    mem.readAccessAt(0, 0);
    EXPECT_GT(mem.busUtilization(100), 0.0);
    EXPECT_GT(mem.bankUtilization(100), 0.0);
    EXPECT_EQ(mem.stats().reads, 1u);
}

// ---------------------------------------------------------------------
// Two-level hierarchy
// ---------------------------------------------------------------------

struct HierFixture : public ::testing::Test
{
    HierFixture()
    {
        MemHierarchy::Config cfg;
        cfg.l1.name = "L1";
        cfg.l1.sizeBytes = 1024;
        cfg.l1.lineBytes = 64;
        cfg.l1.numMshrs = 10;
        cfg.l1.numPorts = 2;
        cfg.l1.hitLatency = 1;
        cfg.l2.name = "L2";
        cfg.l2.sizeBytes = 4096;
        cfg.l2.assoc = 4;
        cfg.l2.lineBytes = 64;
        cfg.l2.numMshrs = 10;
        cfg.l2.numPorts = 1;
        cfg.l2.hitLatency = 10;
        hier = std::make_unique<MemHierarchy>(eq, cfg);
        down = std::make_unique<FakeDownstream>(eq, 60);
        hier->setDownstream(down.get());
    }

    EventQueue eq;
    std::unique_ptr<MemHierarchy> hier;
    std::unique_ptr<FakeDownstream> down;
};

TEST_F(HierFixture, L1HitFast)
{
    Tick t1 = 0;
    hier->load(0x1000, 0, [&](Tick t) { t1 = t; });
    eq.advanceTo(500);
    EXPECT_GT(t1, 60u);  // cold miss went to memory

    Tick t2 = 0;
    hier->load(0x1000, 0, [&](Tick t) { t2 = t; });
    eq.advanceTo(600);
    EXPECT_EQ(t2, 501u);  // L1 hit: 1 cycle
}

TEST_F(HierFixture, L2HitMedium)
{
    hier->load(0x1000, 0, {});
    eq.advanceTo(500);
    // Evict from tiny L1 by filling its set (L1 1KB = 16 sets; +1KB).
    hier->load(0x1000 + 1024, 0, {});
    eq.advanceTo(1000);
    Tick t = 0;
    hier->load(0x1000, 0, [&](Tick tt) { t = tt; });
    eq.advanceTo(1500);
    // L1 miss -> L2 hit: ~1 + 10 + fill. Must be far below memory (60+).
    EXPECT_GT(t, 1000u);
    EXPECT_LE(t, 1000u + 20u);
}

TEST_F(HierFixture, StoreGoesToL2)
{
    bool done = false;
    hier->store(0x2000, 0, [&](Tick) { done = true; });
    eq.advanceTo(500);
    EXPECT_TRUE(done);
    EXPECT_EQ(hier->l1().stats().writes, 0u);   // bypassed
    EXPECT_EQ(hier->l2().stats().writes, 1u);
    EXPECT_EQ(hier->l2().lineState(0x2000), LineState::Modified);
}

TEST_F(HierFixture, InclusionBackInvalidatesL1)
{
    hier->load(0x1000, 0, {});
    eq.advanceTo(500);
    ASSERT_TRUE(hier->l1().isResident(0x1000));
    // Force L2 eviction of that set (L2 4KB 4-way = 16 sets; stride 1KB).
    // One load per "cycle burst": the L1 has only 2 ports per cycle.
    for (int i = 1; i <= 4; ++i) {
        ASSERT_EQ(hier->load(0x1000 + i * 1024, 0, {}),
                  Cache::Status::Ok);
        eq.advanceTo(500 + i * 300);
    }
    eq.advanceTo(2000);
    EXPECT_FALSE(hier->l2().isResident(0x1000));
    EXPECT_FALSE(hier->l1().isResident(0x1000));
}

TEST(HierSingleLevel, LoadsAndStoresShareCache)
{
    EventQueue eq;
    MemHierarchy::Config cfg;
    cfg.singleLevel = true;
    cfg.l1.sizeBytes = 4096;
    cfg.l1.assoc = 4;
    cfg.l1.lineBytes = 32;
    cfg.l1.numMshrs = 10;
    cfg.l1.numPorts = 2;
    cfg.l1.hitLatency = 2;
    MemHierarchy hier(eq, cfg);
    FakeDownstream down(eq, 80);
    hier.setDownstream(&down);

    hier.load(0x100, 0, {});
    hier.store(0x200, 0, {});
    eq.advanceTo(500);
    EXPECT_EQ(hier.l2().stats().loads, 1u);
    EXPECT_EQ(hier.l2().stats().writes, 1u);
    EXPECT_TRUE(hier.l2().isResident(0x100));
    EXPECT_TRUE(hier.l2().isResident(0x200));
}

} // namespace
} // namespace mpc::mem
