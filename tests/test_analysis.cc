/**
 * @file
 * Tests for the memory-parallelism analysis, built directly from the
 * paper's running examples in Sections 2.2 and 3.1-3.2.
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "ir/kernel.hh"

namespace mpc::analysis
{
namespace
{

using namespace mpc::ir;

std::vector<ExprPtr>
subs2(ExprPtr a, ExprPtr b)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
}

std::vector<ExprPtr>
subs1(ExprPtr a)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
}

AnalysisParams
baseParams()
{
    AnalysisParams p;
    p.windowSize = 64;
    p.lp = 10;
    p.lineBytes = 64;
    return p;
}

// --- Figure 2(a): row-wise traversal --------------------------------

Kernel
fig2a()
{
    Kernel k;
    k.name = "fig2a";
    Array *a = k.addArray("A", ScalType::F64, {128, 128});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(a, subs2(varref("j"), varref("i"))),
                        add(aref(a, subs2(varref("j"), varref("i"))),
                            fconst(1.0))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(128), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(128), std::move(ob)));
    assignRefIds(k);
    return k;
}

TEST(Affine, BasicForms)
{
    auto e = add(mul(iconst(3), varref("i")), iconst(7));
    auto f = affineOf(*e);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->coef("i"), 3);
    EXPECT_EQ(f->c, 7);

    auto g = affineOf(*sub(varref("i"), varref("j")));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->coef("i"), 1);
    EXPECT_EQ(g->coef("j"), -1);

    // i*j is not affine.
    EXPECT_FALSE(affineOf(*mul(varref("i"), varref("j"))).has_value());
    // Memory reference inside: not affine.
    EXPECT_FALSE(affineOf(*deref(varref("p"), 0)).has_value());
}

TEST(Affine, ConstEval)
{
    EXPECT_EQ(constEval(*mul(iconst(6), iconst(7))).value(), 42);
    EXPECT_EQ(constEval(*minx(iconst(3), iconst(9))).value(), 3);
    EXPECT_FALSE(constEval(*varref("x")).has_value());
}

TEST(Affine, LinearIndexRowMajor)
{
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {100, 50});
    auto ref = aref(a, subs2(varref("j"), varref("i")));
    auto f = linearIndexForm(*ref);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->coef("j"), 50);   // row stride
    EXPECT_EQ(f->coef("i"), 1);
}

TEST(Nests, FindsInnermost)
{
    Kernel k = fig2a();
    auto nests = findLoopNests(k);
    ASSERT_EQ(nests.size(), 1u);
    EXPECT_EQ(nests[0].depth(), 2);
    EXPECT_EQ(nests[0].inner()->var, "i");
    EXPECT_EQ(nests[0].outer()->var, "j");
}

TEST(Analysis, Fig2aSelfSpatialRecurrence)
{
    Kernel k = fig2a();
    auto nests = findLoopNests(k);
    auto la = analyzeInnerLoop(k, nests[0], baseParams());

    // One spatial group (read + write of A[j,i]); its leader is a
    // self-spatial leading reference with L = 64/8 = 8.
    EXPECT_EQ(la.numLeading(), 1);
    int lead = -1;
    for (size_t i = 0; i < la.refs.size(); ++i)
        if (la.refs[i].leading)
            lead = static_cast<int>(i);
    ASSERT_GE(lead, 0);
    EXPECT_EQ(la.refs[static_cast<size_t>(lead)].lm, 8);
    EXPECT_EQ(la.refs[static_cast<size_t>(lead)].strideBytes, 8);

    // A cache-line recurrence with alpha = 1 (Section 3.2.2's example).
    EXPECT_TRUE(la.hasCacheLineRecurrence);
    EXPECT_FALSE(la.hasAddressRecurrence);
    EXPECT_DOUBLE_EQ(la.alpha, 1.0);

    // Small body: W/(i*L) < 1, so C_m = 1 and f = 1 (paper: "f = freg
    // = 1 for the initial version of this loop").
    EXPECT_DOUBLE_EQ(la.f, 1.0);
}

// --- Section 3.1 example: b[j,2i] = b[j,2i] + a[j,i] + a[j,i-1] -------

TEST(Analysis, CacheLineDependenceExample)
{
    Kernel k;
    Array *a = k.addArray("a", ScalType::F64, {128, 128});
    Array *b = k.addArray("b", ScalType::F64, {128, 256});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(b, subs2(varref("j"), mul(iconst(2), varref("i")))),
        add(add(aref(b, subs2(varref("j"), mul(iconst(2), varref("i")))),
                aref(a, subs2(varref("j"), varref("i")))),
            aref(a, subs2(varref("j"), sub(varref("i"), iconst(1)))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(1), iconst(128), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(128), std::move(ob)));
    assignRefIds(k);

    auto nests = findLoopNests(k);
    auto la = analyzeInnerLoop(k, nests[0], baseParams());

    // Two leading references: a[j,i] (leads its group over a[j,i-1])
    // and the b group leader. Both self-spatial.
    EXPECT_EQ(la.numLeading(), 2);
    // a[j,i] has L = 8; b[j,2i] has stride 16 -> L = 4.
    std::int64_t a_lm = 0, b_lm = 0;
    for (const auto &r : la.refs) {
        if (!r.leading)
            continue;
        if (r.expr->array == a)
            a_lm = r.lm;
        if (r.expr->array == b)
            b_lm = r.lm;
    }
    EXPECT_EQ(a_lm, 8);
    EXPECT_EQ(b_lm, 4);

    // Cache-line edge a[j,i] -> a[j,i-1] with distance 1.
    bool found = false;
    for (const auto &e : la.edges) {
        if (e.from != e.to && !e.isAddress &&
            la.refs[static_cast<size_t>(e.from)].expr->array == a &&
            e.distance == 1)
            found = true;
    }
    EXPECT_TRUE(found);
}

// --- Section 3.1: indirect addressing (sparse-matrix pattern) --------

TEST(Analysis, AddressDependenceIndirect)
{
    // for i: ind = a[j,i]; sum[j] = sum[j] + b[ind]
    Kernel k;
    Array *a = k.addArray("a", ScalType::I64, {64, 512});
    Array *b = k.addArray("b", ScalType::F64, {65536});
    Array *sum = k.addArray("sum", ScalType::F64, {64});
    k.declareScalar("ind", ScalType::I64);
    std::vector<StmtPtr> ib;
    ib.push_back(assign(varref("ind"),
                        aref(a, subs2(varref("j"), varref("i")))));
    ib.push_back(assign(aref(sum, subs1(varref("j"))),
                        add(aref(sum, subs1(varref("j"))),
                            aref(b, subs1(varref("ind"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(512), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(64), std::move(ob)));
    assignRefIds(k);

    auto nests = findLoopNests(k);
    auto params = baseParams();
    params.missRate = [](int) { return 0.5; };
    auto la = analyzeInnerLoop(k, nests[0], params);

    // a[j,i] regular leading (self-spatial); b[ind] irregular leading;
    // sum[j] inner-invariant, not leading.
    int regular_leads = 0, irregular_leads = 0;
    for (const auto &r : la.refs) {
        if (r.leading && r.regular)
            ++regular_leads;
        if (r.leading && !r.regular)
            ++irregular_leads;
        if (r.regular && r.expr->array == sum) {
            EXPECT_FALSE(r.leading);
        }
    }
    EXPECT_EQ(regular_leads, 1);
    EXPECT_EQ(irregular_leads, 1);

    // Address edge a -> b with distance 0, but NOT an address
    // recurrence (no cycle through the address edge).
    bool addr_edge = false;
    for (const auto &e : la.edges)
        if (e.isAddress &&
            la.refs[static_cast<size_t>(e.from)].expr->array == a &&
            la.refs[static_cast<size_t>(e.to)].expr->array == b)
            addr_edge = true;
    EXPECT_TRUE(addr_edge);
    EXPECT_FALSE(la.hasAddressRecurrence);
    EXPECT_TRUE(la.hasCacheLineRecurrence);  // a's self-spatial cycle

    // f includes the irregular contribution ceil(P*C) >= 1 (Eq. 4).
    EXPECT_GE(la.firreg, 1);
}

// --- Section 3.1: pointer chasing ------------------------------------

TEST(Analysis, PointerChaseAddressRecurrence)
{
    // for (l = list[i]; l; l = l->next) sum += l->data
    Kernel k;
    k.declareScalar("l", ScalType::I64);
    k.declareScalar("sum", ScalType::F64);
    std::vector<StmtPtr> body;
    body.push_back(assign(varref("sum"),
                          add(varref("sum"), deref(varref("l"), 8))));
    k.body.push_back(ptrLoop("l", iconst(0x100000), 0, std::move(body)));
    assignRefIds(k);

    auto nests = findLoopNests(k);
    auto la = analyzeInnerLoop(k, nests[0], baseParams());

    // The advance load l->next forms an address recurrence of
    // distance 1; alpha = 1.
    EXPECT_TRUE(la.hasAddressRecurrence);
    EXPECT_DOUBLE_EQ(la.alpha, 1.0);
    // With an address recurrence, C_m = 1 for every reference (Eq. 1).
    EXPECT_LE(la.f, 2.0);

    // l->data depends on the advance load: an address edge with the
    // loop-carried distance.
    bool carried_addr = false;
    for (const auto &e : la.edges)
        if (e.isAddress && e.distance == 1)
            carried_addr = true;
    EXPECT_TRUE(carried_addr);
}

// --- Equation 1: dynamic inner-loop unrolling breaks line recurrences -

TEST(Analysis, DynamicUnrollRaisesCm)
{
    // Unit-stride 1-D sweep with a tiny body: the 64-entry window holds
    // many iterations, so C_m = ceil(W / (i * L)) can exceed 1.
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {1 << 16});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(varref("s"),
                        add(varref("s"), aref(x, subs1(varref("i"))))));
    k.declareScalar("s", ScalType::F64);
    k.body.push_back(forLoop("i", iconst(0), iconst(1 << 16),
                             std::move(ib)));
    assignRefIds(k);

    auto nests = findLoopNests(k);
    auto params = baseParams();
    // Pretend the lowered body is 4 instructions: W/(i*L) = 64/32 = 2.
    params.bodySize = [](const ir::Kernel &, const ir::Stmt &) { return 4; };
    auto la = analyzeInnerLoop(k, nests[0], params);
    EXPECT_EQ(la.numLeading(), 1);
    EXPECT_DOUBLE_EQ(la.freg, 2.0);

    // A big body gives C_m = 1.
    params.bodySize = [](const ir::Kernel &, const ir::Stmt &) { return 40; };
    auto la2 = analyzeInnerLoop(k, nests[0], params);
    EXPECT_DOUBLE_EQ(la2.freg, 1.0);
}

TEST(Analysis, WriteRefsCountAsLeading)
{
    // Store-only streaming loop: the write leads (writes share MSHRs).
    Kernel k;
    Array *x = k.addArray("x", ScalType::F64, {4096});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(x, subs1(varref("i"))), fconst(0.0)));
    k.body.push_back(forLoop("i", iconst(0), iconst(4096),
                             std::move(ib)));
    assignRefIds(k);
    auto nests = findLoopNests(k);
    auto la = analyzeInnerLoop(k, nests[0], baseParams());
    EXPECT_EQ(la.numLeading(), 1);
    EXPECT_TRUE(la.refs[0].isWrite);
}

} // namespace
} // namespace mpc::analysis
