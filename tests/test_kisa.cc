/**
 * @file
 * Unit tests for the KISA instruction set, builder, memory image, and
 * functional interpreter.
 */

#include <gtest/gtest.h>

#include <set>

#include "kisa/interp.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"

namespace mpc::kisa
{
namespace
{

TEST(MemoryImage, ZeroInitialized)
{
    MemoryImage mem;
    EXPECT_EQ(mem.ld64(0x1000), 0u);
    EXPECT_DOUBLE_EQ(mem.ldF64(0x2000), 0.0);
}

TEST(MemoryImage, ReadWrite64)
{
    MemoryImage mem;
    mem.st64(0x1000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.ld64(0x1000), 0xdeadbeefcafef00dULL);
    // Neighbors untouched.
    EXPECT_EQ(mem.ld64(0x1008), 0u);
    EXPECT_EQ(mem.ld64(0x0ff8), 0u);
}

TEST(MemoryImage, DoubleRoundTrip)
{
    MemoryImage mem;
    mem.stF64(0x88, 3.14159);
    EXPECT_DOUBLE_EQ(mem.ldF64(0x88), 3.14159);
}

TEST(MemoryImage, CrossPage)
{
    MemoryImage mem;
    const Addr near_boundary = MemoryImage::pageBytes - 8;
    mem.st64(near_boundary, 1);
    mem.st64(near_boundary + 8, 2);
    EXPECT_EQ(mem.ld64(near_boundary), 1u);
    EXPECT_EQ(mem.ld64(near_boundary + 8), 2u);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(OpClass, Classification)
{
    EXPECT_EQ(opClass(Op::IAdd), OpClass::IntAlu);
    EXPECT_EQ(opClass(Op::IMul), OpClass::IntMul);
    EXPECT_EQ(opClass(Op::FAdd), OpClass::FpArith);
    EXPECT_EQ(opClass(Op::FDiv), OpClass::FpDiv);
    EXPECT_EQ(opClass(Op::FSqrt), OpClass::FpSqrt);
    EXPECT_EQ(opClass(Op::LdF), OpClass::MemRead);
    EXPECT_EQ(opClass(Op::StI), OpClass::MemWrite);
    EXPECT_EQ(opClass(Op::BEq), OpClass::IntAlu);
    EXPECT_EQ(opClass(Op::Barrier), OpClass::Sync);
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isMemOp(Op::LdI));
    EXPECT_TRUE(isMemOp(Op::StF));
    EXPECT_FALSE(isMemOp(Op::IAdd));
    EXPECT_TRUE(isBranch(Op::BLt));
    EXPECT_TRUE(isBranch(Op::Jmp));
    EXPECT_FALSE(isBranch(Op::Halt));
    EXPECT_TRUE(destIsFp(Op::LdF));
    EXPECT_FALSE(destIsFp(Op::LdI));
    EXPECT_TRUE(srcBIsFp(Op::StF));
    EXPECT_FALSE(srcAIsFp(Op::LdF));  // base address is integer
}

TEST(AsmBuilder, SimpleArithmetic)
{
    AsmBuilder b("arith");
    b.iLoadImm(1, 20);
    b.iLoadImm(2, 22);
    b.iAdd(3, 1, 2);
    b.halt();
    Program p = b.finish();
    ASSERT_EQ(p.size(), 4u);

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[3], 42);
}

TEST(AsmBuilder, BackwardBranchLoop)
{
    // sum = 0; for (i = 0; i < 10; ++i) sum += i;
    AsmBuilder b("loop");
    const Reg r_i = 1, r_n = 2, r_sum = 3;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, 10);
    b.iLoadImm(r_sum, 0);
    auto loop = b.newLabel();
    b.bind(loop);
    b.iAdd(r_sum, r_sum, r_i);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    Program p = b.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[r_sum], 45);
}

TEST(AsmBuilder, ForwardBranch)
{
    AsmBuilder b("fwd");
    const Reg r_a = 1, r_b = 2, r_out = 3;
    b.iLoadImm(r_a, 5);
    b.iLoadImm(r_b, 5);
    b.iLoadImm(r_out, 0);
    auto skip = b.newLabel();
    b.bEq(r_a, r_b, skip);
    b.iLoadImm(r_out, 99);  // skipped
    b.bind(skip);
    b.halt();
    Program p = b.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[r_out], 0);
}

TEST(Interp, LoadStore)
{
    AsmBuilder b("ldst");
    const Reg r_base = 1, r_v = 2, r_out = 3;
    b.iLoadImm(r_base, 0x1000);
    b.iLoadImm(r_v, 77);
    b.stI(r_base, 8, r_v);
    b.ldI(r_out, r_base, 8);
    b.halt();
    Program p = b.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[r_out], 77);
    EXPECT_EQ(mem.ld64(0x1008), 77u);
}

TEST(Interp, FloatPipeline)
{
    AsmBuilder b("fp");
    b.fLoadImm(1, 2.0);
    b.fLoadImm(2, 8.0);
    b.fMul(3, 1, 2);   // 16
    b.fSqrt(4, 3);     // 4
    b.fDiv(5, 4, 1);   // 2
    b.fSub(6, 5, 1);   // 0
    b.halt();
    Program p = b.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_DOUBLE_EQ(interp.regs(0).fpRegs[6], 0.0);
}

TEST(Interp, PointerChase)
{
    // Build a 4-node linked list in memory: node at addr holds next ptr.
    MemoryImage mem;
    const Addr nodes[4] = {0x1000, 0x5000, 0x3000, 0x9000};
    for (int i = 0; i < 3; ++i)
        mem.st64(nodes[i], nodes[i + 1]);
    mem.st64(nodes[3], 0);

    AsmBuilder b("chase");
    const Reg r_p = 1, r_zero = 2, r_count = 3;
    b.iLoadImm(r_p, static_cast<std::int64_t>(nodes[0]));
    b.iLoadImm(r_zero, 0);
    b.iLoadImm(r_count, 0);
    auto loop = b.newLabel();
    b.bind(loop);
    b.iAddImm(r_count, r_count, 1);
    b.ldI(r_p, r_p, 0);
    b.bNe(r_p, r_zero, loop);
    b.halt();
    Program p = b.finish();

    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[r_count], 4);
}

TEST(Interp, InstrCountAndMemHook)
{
    AsmBuilder b("hook");
    b.iLoadImm(1, 0x2000);
    b.ldI(2, 1, 0);
    b.stI(1, 8, 2);
    b.halt();
    Program p = b.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    int loads = 0, stores = 0;
    interp.setMemHook([&](int, const Instr &, Addr, bool is_load) {
        if (is_load)
            ++loads;
        else
            ++stores;
    });
    interp.run();
    EXPECT_EQ(loads, 1);
    EXPECT_EQ(stores, 1);
    EXPECT_EQ(interp.instrCount(0), 4u);
}

TEST(Interp, TwoCoreBarrier)
{
    // Core 0 writes 5 to 0x100, hits barrier.
    // Core 1 hits barrier, then reads 0x100.
    AsmBuilder b0("producer");
    b0.iLoadImm(1, 0x100);
    b0.iLoadImm(2, 5);
    b0.stI(1, 0, 2);
    b0.barrier();
    b0.halt();
    Program p0 = b0.finish();

    AsmBuilder b1("consumer");
    b1.barrier();
    b1.iLoadImm(1, 0x100);
    b1.ldI(3, 1, 0);
    b1.halt();
    Program p1 = b1.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p0);
    interp.addCore(p1);
    interp.run();
    EXPECT_EQ(interp.regs(1).intRegs[3], 5);
}

TEST(Interp, FlagWaitProducerConsumer)
{
    AsmBuilder b0("producer");
    b0.iLoadImm(1, 0x300);   // flag address
    b0.iLoadImm(2, 0x308);   // data address
    b0.iLoadImm(3, 123);
    b0.stI(2, 0, 3);         // data first
    b0.iLoadImm(4, 1);
    b0.stI(1, 0, 4);         // then flag (release)
    b0.halt();
    Program p0 = b0.finish();

    AsmBuilder b1("consumer");
    b1.iLoadImm(1, 0x300);
    b1.iLoadImm(2, 0x308);
    b1.iLoadImm(5, 1);
    b1.flagWait(1, 0, 5);    // acquire
    b1.ldI(6, 2, 0);
    b1.halt();
    Program p1 = b1.finish();

    MemoryImage mem;
    Interpreter interp(mem);
    // Add consumer first so it blocks before the producer runs.
    interp.addCore(p1);
    interp.addCore(p0);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[6], 123);
}

TEST(Disasm, ContainsMnemonics)
{
    AsmBuilder b("dis");
    b.iLoadImm(1, 7);
    b.ldF(2, 1, 16);
    auto l = b.newLabel();
    b.bind(l);
    b.bLt(1, 1, l);
    b.halt();
    Program p = b.finish();
    const std::string d = p.disassemble();
    EXPECT_NE(d.find("ildimm"), std::string::npos);
    EXPECT_NE(d.find("ldf"), std::string::npos);
    EXPECT_NE(d.find("blt"), std::string::npos);
    EXPECT_NE(d.find("halt"), std::string::npos);
}


TEST(Disasm, EveryOpcodeHasDistinctMnemonic)
{
    using U = std::underlying_type_t<Op>;
    std::set<std::string> names;
    int count = 0;
    for (U raw = 0; raw <= static_cast<U>(Op::Halt); ++raw) {
        const Op op = static_cast<Op>(raw);
        const std::string name = opName(op);
        EXPECT_NE(name, "???") << raw;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate mnemonic " << name;
        // toString must render without crashing for a generic instr.
        Instr in;
        in.op = op;
        in.rd = 1;
        in.ra = 2;
        in.rb = 3;
        in.imm = 42;
        in.target = 7;
        EXPECT_FALSE(in.toString().empty());
        // Classification is total.
        (void)opClass(op);
        ++count;
    }
    EXPECT_GT(count, 40);
}

TEST(Interp, PrefetchWarmsNothingArchitectural)
{
    AsmBuilder b("pf");
    b.iLoadImm(1, 0x9000);
    Instr pf;
    pf.op = Op::Prefetch;
    pf.ra = 1;
    pf.imm = 8;
    b.emit(pf);
    b.ldI(2, 1, 8);
    b.halt();
    Program p = b.finish();
    kisa::MemoryImage mem;
    mem.st64(0x9008, 77);
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[2], 77);
}

TEST(Interp, MinMaxMovSemantics)
{
    AsmBuilder b("mm");
    b.iLoadImm(1, -5);
    b.iLoadImm(2, 3);
    b.emit([] { Instr i; i.op = Op::IMin; i.rd = 3; i.ra = 1;
                i.rb = 2; return i; }());
    b.emit([] { Instr i; i.op = Op::IMax; i.rd = 4; i.ra = 1;
                i.rb = 2; return i; }());
    b.fLoadImm(1, 2.25);
    b.emit([] { Instr i; i.op = Op::FMov; i.rd = 2; i.ra = 1;
                return i; }());
    b.halt();
    Program p = b.finish();
    kisa::MemoryImage mem;
    Interpreter interp(mem);
    interp.addCore(p);
    interp.run();
    EXPECT_EQ(interp.regs(0).intRegs[3], -5);
    EXPECT_EQ(interp.regs(0).intRegs[4], 3);
    EXPECT_DOUBLE_EQ(interp.regs(0).fpRegs[2], 2.25);
}

TEST(InterpDeath, UnboundLabel)
{
    AsmBuilder b("bad");
    auto l = b.newLabel();
    b.jmp(l);
    b.halt();
    EXPECT_DEATH({ b.finish(); }, "unbound label");
}

} // namespace
} // namespace mpc::kisa
