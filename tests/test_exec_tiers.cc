/**
 * @file
 * Tier-equivalence integration tests: every workload's real lowered
 * kernel — uniprocessor and multiprocessor-partitioned — executes to
 * bit-identical results (dynamic instruction counts and array
 * checksums) on the interpreter and threaded tiers. This is the
 * workload-scale counterpart of test_exec.cc's randomized fuzz: the
 * programs here come from the actual code generator, so they exercise
 * the operand patterns the superinstruction peephole was built for.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "codegen/codegen.hh"
#include "ir/eval.hh"
#include "kisa/exec_threaded.hh"
#include "transform/transforms.hh"
#include "workloads/workload.hh"

namespace mpc::workloads
{
namespace
{

SizeParams
tiny()
{
    SizeParams size;
    size.scale = 1;
    return size;
}

/** Run @p programs on @p tier against a fresh initialized memory
 *  image; returns {total instructions, array checksum}. */
std::pair<std::uint64_t, std::uint64_t>
runOnTier(const Workload &w, const std::vector<kisa::Program> &programs,
          kisa::ExecTier tier)
{
    kisa::MemoryImage mem;
    w.init(mem);
    const std::uint64_t instrs =
        kisa::execute(programs, mem, 1ull << 30, tier);
    return {instrs, ir::checksumArrays(w.kernel, mem)};
}

class ExecTierWorkloads
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ExecTierWorkloads, UniprocessorBitIdenticalAcrossTiers)
{
    const Workload w = makeByName(GetParam(), tiny());
    const std::vector<kisa::Program> programs{codegen::lower(w.kernel)};
    const auto interp =
        runOnTier(w, programs, kisa::ExecTier::Interp);
    const auto threaded =
        runOnTier(w, programs, kisa::ExecTier::Threaded);
    EXPECT_EQ(interp.first, threaded.first) << "instruction count";
    EXPECT_EQ(interp.second, threaded.second) << "array checksum";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ExecTierWorkloads,
                         ::testing::Values("latbench", "em3d",
                                           "erlebacher", "fft", "lu",
                                           "mp3d", "mst", "ocean"));

class MultiprocTierWorkloads
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(MultiprocTierWorkloads, PartitionedRunBitIdenticalAcrossTiers)
{
    // Partition as the harness runner does, then run the per-core
    // programs on both tiers. Both tiers implement the same
    // round-robin core schedule, so even mp3d — whose multiprocessor
    // accumulation order differs from the sequential reference by
    // design — is deterministic tier-vs-tier.
    const Workload w = makeByName(GetParam(), tiny());
    ir::Kernel part = w.kernel.clone();
    transform::partitionParallelLoops(part);
    const auto programs =
        codegen::lowerForCores(part, w.defaultProcs, false);
    const auto interp =
        runOnTier(w, programs, kisa::ExecTier::Interp);
    const auto threaded =
        runOnTier(w, programs, kisa::ExecTier::Threaded);
    EXPECT_EQ(interp.first, threaded.first) << "instruction count";
    EXPECT_EQ(interp.second, threaded.second) << "array checksum";
}

// latbench and mst are uniprocessor-only (defaultProcs == 0).
INSTANTIATE_TEST_SUITE_P(Multiproc, MultiprocTierWorkloads,
                         ::testing::Values("em3d", "erlebacher", "fft",
                                           "lu", "mp3d", "ocean"));

TEST(ExecTiers, LoweredCodeFormsSuperinstructions)
{
    // The peephole targets codegen's address-generation idiom; a real
    // lowered kernel must actually trigger it (and never trap).
    const Workload w = makeByName("lu", tiny());
    const auto program = codegen::lower(w.kernel);
    const kisa::ThreadedProgram tprog(program);
    EXPECT_GT(tprog.fusedCount(), 0u);
    EXPECT_EQ(tprog.trapCount(), 0u);
}

} // namespace
} // namespace mpc::workloads
