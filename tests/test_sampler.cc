/**
 * @file
 * Epoch sampler tests: the per-epoch stall-taxonomy deltas must tile
 * the run's aggregate taxonomy exactly (no slot counted twice or
 * dropped at an epoch boundary); sampled timestamps must be strictly
 * monotonic; per-epoch registry counter deltas must sum to the final
 * counters; turning sampling on must leave simulation results
 * bit-identical in both step modes; and the time-series JSON must
 * parse and carry the spliced manifest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "kisa/program.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;

/** A loop with loads, FP arithmetic, stores, and a loop branch. */
Program
loopProgram(int iters, Addr base)
{
    AsmBuilder b("loop");
    b.iLoadImm(1, static_cast<std::int64_t>(base));
    b.iLoadImm(2, 0);
    b.iLoadImm(3, iters);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(4, 1, 0);
    b.fAdd(4, 4, 4);
    b.stF(1, 8, 4);
    b.iAddImm(1, 1, 64);
    b.iAddImm(2, 2, 1);
    b.bLt(2, 3, loop);
    b.halt();
    return b.finish();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(MetricsRegistry, CountersAndGaugesSnapshotInOrder)
{
    obs::MetricsRegistry reg;
    std::uint64_t a = 7, b = 0;
    reg.addCounter("x.a", &a);
    reg.addGauge("x.depth", [&b] { return b + 100; });
    reg.addCounter("x.b", &b);

    ASSERT_EQ(reg.size(), 3u);
    const auto names = reg.names();
    EXPECT_EQ(names[0], "x.a");
    EXPECT_EQ(names[1], "x.depth");
    EXPECT_EQ(names[2], "x.b");

    b = 5;
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap[0], 7u);
    EXPECT_EQ(snap[1], 105u);   // gauge reads live state
    EXPECT_EQ(snap[2], 5u);
}

TEST(Sampler, TimestampsStrictlyMonotonicInBothStepModes)
{
    for (const bool skip : {true, false}) {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(loopProgram(300, 0x100000));
        auto cfg = sys::baseConfig();
        cfg.skipAhead = skip;
        cfg.samplePeriod = 500;
        sys::System s(cfg, std::move(ps), image);
        s.run();

        const obs::Sampler *sampler = s.observer()->sampler();
        ASSERT_NE(sampler, nullptr);
        const auto &epochs = sampler->epochs();
        ASSERT_GT(epochs.size(), 2u) << "skip=" << skip;
        for (std::size_t i = 1; i < epochs.size(); ++i)
            ASSERT_LT(epochs[i - 1].t, epochs[i].t)
                << "skip=" << skip << " epoch " << i;
    }
}

TEST(Sampler, EpochStallDeltasTileAggregateTaxonomyExactly)
{
    for (const bool skip : {true, false}) {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(loopProgram(300, 0x100000));
        auto cfg = sys::baseConfig();
        cfg.skipAhead = skip;
        cfg.obsMetrics = true;
        cfg.samplePeriod = 700;
        sys::System s(cfg, std::move(ps), image);
        const auto r = s.run();
        ASSERT_TRUE(r.obsMetrics.enabled);

        const obs::Sampler *sampler = s.observer()->sampler();
        ASSERT_NE(sampler, nullptr);
        std::uint64_t sums[obs::numStallWhy] = {};
        for (const auto &epoch : sampler->epochs())
            for (const auto &core : epoch.cores)
                for (int w = 0; w < obs::numStallWhy; ++w)
                    sums[w] += core.stalls[w];
        // The final partial epoch is emitted by finalize(), so the
        // deltas must tile the aggregate with nothing left over.
        for (int w = 0; w < obs::numStallWhy; ++w)
            EXPECT_EQ(sums[w], r.obsMetrics.stall.slots[w])
                << "skip=" << skip << " slot "
                << obs::stallWhyName(static_cast<obs::StallWhy>(w));
    }
}

TEST(Sampler, EpochCounterDeltasSumToFinalCounters)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(300, 0x100000));
    auto cfg = sys::baseConfig();
    cfg.samplePeriod = 400;
    sys::System s(cfg, std::move(ps), image);
    const auto r = s.run();

    const obs::MetricsRegistry *reg = s.observer()->registry();
    const obs::Sampler *sampler = s.observer()->sampler();
    ASSERT_NE(reg, nullptr);
    ASSERT_NE(sampler, nullptr);

    const auto names = reg->names();
    std::size_t retired_idx = names.size();
    for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == "core0.retired")
            retired_idx = i;
    ASSERT_LT(retired_idx, names.size());

    std::uint64_t total = 0;
    for (const auto &epoch : sampler->epochs()) {
        ASSERT_EQ(epoch.metrics.size(), names.size());
        total += epoch.metrics[retired_idx];
    }
    EXPECT_EQ(total, r.cores[0].retired);
}

TEST(Sampler, SamplingDoesNotPerturbResults)
{
    sys::RunResult results[2];
    for (const int sample_on : {0, 1}) {
        for (const bool skip : {true, false}) {
            kisa::MemoryImage image;
            auto cfg = sys::baseConfig();
            cfg.skipAhead = skip;
            if (sample_on)
                cfg.samplePeriod = 300;
            std::vector<Program> ps;
            ps.push_back(loopProgram(250, 0x100000));
            sys::System s(cfg, std::move(ps), image);
            const auto r = s.run();
            if (skip)
                results[sample_on] = r;
            else
                EXPECT_EQ(r.cycles, results[sample_on].cycles);
        }
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].instructions, results[1].instructions);
    EXPECT_EQ(results[0].l1.loadMisses, results[1].l1.loadMisses);
    EXPECT_EQ(results[0].l2.loadMisses, results[1].l2.loadMisses);
    EXPECT_EQ(results[0].busyCycles, results[1].busyCycles);
    EXPECT_EQ(results[0].dataReadCycles, results[1].dataReadCycles);
    EXPECT_EQ(results[0].cpuCycles, results[1].cpuCycles);
}

TEST(Sampler, JsonParsesEmbedsManifestAndBoundsNodeFields)
{
    const std::string path = "sampler_test_samples.json";
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(300, 0x100000));
    auto cfg = sys::baseConfig();
    cfg.samplePeriod = 500;
    cfg.samplePath = path;
    cfg.manifestJson = "{\"schema\": \"mpc-manifest-v1\", "
                       "\"workload\": \"unit\"}";
    sys::System s(cfg, std::move(ps), image);
    s.run();

    const std::string text = readFile(path);
    std::remove(path.c_str());
    json::Value root;
    ASSERT_TRUE(json::parse(text, root)) << text.substr(0, 200);
    EXPECT_EQ(json::strField(root, "schema"), "mpc-samples-v1");
    EXPECT_EQ(json::numField(root, "period"), 500.0);

    const json::Value *manifest = root.field("manifest");
    ASSERT_NE(manifest, nullptr);
    EXPECT_EQ(json::strField(*manifest, "workload"), "unit");

    const json::Value *epochs = root.field("epochs");
    ASSERT_NE(epochs, nullptr);
    ASSERT_EQ(epochs->t, json::Value::T::Arr);
    EXPECT_EQ(static_cast<double>(epochs->arr.size()),
              json::numField(root, "epochCount"));
    ASSERT_FALSE(epochs->arr.empty());
    for (const json::Value &e : epochs->arr) {
        const json::Value *nodes = e.field("nodes");
        ASSERT_NE(nodes, nullptr);
        for (const json::Value &node : nodes->arr) {
            const double mlp = json::numField(node, "mlp");
            const double busy = json::numField(node, "busyFrac");
            EXPECT_GE(mlp, 0.0);
            EXPECT_GE(busy, 0.0);
            EXPECT_LE(busy, 1.0);
        }
    }
}

} // namespace
} // namespace mpc
