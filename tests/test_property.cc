/**
 * @file
 * Property-based tests: randomly generated affine loop nests are
 * pushed through every transformation and through codegen, and must
 * always compute bit-identical results to the untransformed kernel
 * (IR evaluator as the oracle, KISA interpreter as the second
 * implementation). Parameterized over seeds (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "common/rng.hh"
#include "ir/eval.hh"
#include "ir/kernel.hh"
#include "kisa/interp.hh"
#include "transform/driver.hh"
#include "transform/legality.hh"
#include "transform/transforms.hh"

namespace mpc
{
namespace
{

using namespace mpc::ir;

/** Deterministic random kernel: 2-level nest over 1-3 arrays with
 *  affine accesses whose subscripts provably stay in bounds. */
struct RandomKernel
{
    Kernel kernel;
    std::vector<const Array *> arrays;

    explicit RandomKernel(std::uint64_t seed)
    {
        Rng rng(seed);
        kernel.name = "fuzz" + std::to_string(seed);
        const std::int64_t rows = 6 + std::int64_t(rng.below(12));
        const std::int64_t cols = 6 + std::int64_t(rng.below(18));
        const int narrays = 2 + int(rng.below(2));
        // Margin 4 allows subscript offsets in [-2, +2] with lo >= 2.
        for (int a = 0; a < narrays; ++a) {
            arrays.push_back(kernel.addArray(
                "A" + std::to_string(a), ScalType::F64,
                {rows + 4, cols + 4}));
        }
        kernel.declareScalar("acc", ScalType::F64);

        auto subscript = [&](const char *var) {
            const std::int64_t offset =
                std::int64_t(rng.below(5)) - 2;   // [-2, 2]
            if (offset == 0)
                return varref(var);
            return add(varref(var), iconst(offset));
        };
        auto random_ref = [&]() {
            const Array *arr = arrays[rng.below(arrays.size())];
            std::vector<ExprPtr> subs;
            subs.push_back(subscript("j"));
            subs.push_back(subscript("i"));
            return aref(arr, std::move(subs));
        };

        std::vector<StmtPtr> body;
        const int nstmts = 1 + int(rng.below(3));
        for (int s = 0; s < nstmts; ++s) {
            // dest array 0 only (keeps the nest jam-legal in most
            // draws); value mixes two reads and a constant.
            std::vector<ExprPtr> dst_subs;
            dst_subs.push_back(varref("j"));
            dst_subs.push_back(varref("i"));
            ExprPtr value = add(
                mul(random_ref(), fconst(0.5 + rng.uniform())),
                random_ref());
            if (rng.below(2))
                value = add(std::move(value), varref("acc"));
            body.push_back(assign(aref(arrays[0], std::move(dst_subs)),
                                  std::move(value)));
        }

        std::vector<StmtPtr> outer_body;
        outer_body.push_back(forLoop("i", iconst(2),
                                     iconst(2 + cols), std::move(body)));
        kernel.body.push_back(forLoop("j", iconst(2), iconst(2 + rows),
                                      std::move(outer_body)));
        assignRefIds(kernel);
        layoutArrays(kernel);
    }

    void
    fill(kisa::MemoryImage &mem, std::uint64_t seed) const
    {
        Rng rng(seed * 77 + 5);
        for (const auto &array : kernel.arrays)
            for (std::int64_t e = 0; e < array.numElems(); ++e)
                mem.stF64(array.base + Addr(e) * 8, rng.uniform());
    }

    std::uint64_t
    evalChecksum(const Kernel &k) const
    {
        kisa::MemoryImage mem;
        fill(mem, 1);
        Evaluator ev(k, mem);
        ev.run();
        return checksumArrays(k, mem);
    }

    std::uint64_t
    interpChecksum(const Kernel &k, bool clustered) const
    {
        kisa::MemoryImage mem;
        fill(mem, 1);
        codegen::CodegenOptions options;
        options.clusteredSchedule = clustered;
        auto program = codegen::lower(k, options);
        kisa::Interpreter interp(mem);
        interp.addCore(program);
        interp.run(1u << 28);
        return checksumArrays(k, mem);
    }
};

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzSeeds, EvaluatorVsInterpreter)
{
    RandomKernel rk(GetParam());
    EXPECT_EQ(rk.evalChecksum(rk.kernel),
              rk.interpChecksum(rk.kernel, false));
    EXPECT_EQ(rk.evalChecksum(rk.kernel),
              rk.interpChecksum(rk.kernel, true));
}

TEST_P(FuzzSeeds, UnrollAndJamPreservesSemantics)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    for (int factor : {2, 3, 5}) {
        Kernel x = rk.kernel.clone();
        auto nests = analysis::findLoopNests(x);
        ASSERT_EQ(nests.size(), 1u);
        if (!transform::unrollAndJam(x, *nests[0].outer(), factor))
            continue;   // illegal draw: nothing to check
        EXPECT_EQ(rk.evalChecksum(x), golden)
            << "factor " << factor << "\n" << x.toString();
        EXPECT_EQ(rk.interpChecksum(x, true), golden);
    }
}

TEST_P(FuzzSeeds, InnerUnrollPreservesSemantics)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    for (int factor : {2, 4, 7}) {
        Kernel x = rk.kernel.clone();
        auto nests = analysis::findLoopNests(x);
        ASSERT_TRUE(
            transform::innerUnroll(x, *nests[0].inner(), factor));
        EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
    }
}

TEST_P(FuzzSeeds, StripMinePreservesSemantics)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    for (int strip : {3, 8}) {
        Kernel x = rk.kernel.clone();
        auto nests = analysis::findLoopNests(x);
        ASSERT_TRUE(transform::stripMine(x, *nests[0].inner(), strip));
        EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
    }
}

TEST_P(FuzzSeeds, InterchangeLegalOrRefused)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    Kernel x = rk.kernel.clone();
    if (transform::interchange(x, *x.body[0])) {
        EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
    }
}

TEST_P(FuzzSeeds, ScalarReplacePreservesSemantics)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    Kernel x = rk.kernel.clone();
    auto nests = analysis::findLoopNests(x);
    transform::scalarReplace(x, *nests[0].inner());
    EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
}

TEST_P(FuzzSeeds, FullDriverPreservesSemantics)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    Kernel x = rk.kernel.clone();
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    transform::applyClustering(x, params);
    EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
    EXPECT_EQ(rk.interpChecksum(x, true), golden);
}

TEST_P(FuzzSeeds, PartitioningCoversSpace)
{
    RandomKernel rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    Kernel x = rk.kernel.clone();
    // Mark the outer loop parallel only if the dependence test allows
    // reordering; otherwise partitioning is still row-contiguous and
    // sequential within each processor, so results can differ only
    // through cross-processor interleaving. Use 1 proc as a smoke
    // check in that case.
    x.body[0]->parallel = transform::canUnrollAndJam(*x.body[0]);
    const int procs = x.body[0]->parallel ? 4 : 1;
    transform::partitionParallelLoops(x);
    kisa::MemoryImage mem;
    rk.fill(mem, 1);
    auto programs = codegen::lowerForCores(x, procs, false);
    kisa::Interpreter interp(mem);
    for (auto &p : programs)
        interp.addCore(p);
    interp.run(1u << 28);
    EXPECT_EQ(checksumArrays(x, mem), golden);
}


/** 3-level random nest: slabs x rows x cols, writes to array 0 only. */
struct RandomNest3
{
    Kernel kernel;
    std::vector<const Array *> arrays;

    explicit RandomNest3(std::uint64_t seed)
    {
        Rng rng(seed * 131 + 7);
        kernel.name = "fuzz3_" + std::to_string(seed);
        const std::int64_t slabs = 3 + std::int64_t(rng.below(4));
        const std::int64_t rows = 4 + std::int64_t(rng.below(6));
        const std::int64_t cols = 6 + std::int64_t(rng.below(10));
        const int narrays = 2 + int(rng.below(2));
        for (int a = 0; a < narrays; ++a) {
            arrays.push_back(kernel.addArray(
                "T" + std::to_string(a), ScalType::F64,
                {slabs + 2, rows + 4, cols + 4}));
        }
        auto subscript = [&](const char *var, int spread) {
            const std::int64_t offset =
                std::int64_t(rng.below(std::uint64_t(2 * spread + 1))) -
                spread;
            if (offset == 0)
                return varref(var);
            return add(varref(var), iconst(offset));
        };
        auto random_read = [&]() {
            const Array *arr = arrays[rng.below(arrays.size())];
            std::vector<ExprPtr> subs;
            subs.push_back(varref("k"));
            subs.push_back(subscript("j", 2));
            subs.push_back(subscript("i", 2));
            return aref(arr, std::move(subs));
        };
        std::vector<StmtPtr> body;
        const int nstmts = 1 + int(rng.below(2));
        for (int s = 0; s < nstmts; ++s) {
            std::vector<ExprPtr> dst;
            dst.push_back(varref("k"));
            dst.push_back(varref("j"));
            dst.push_back(varref("i"));
            body.push_back(assign(
                aref(arrays[0], std::move(dst)),
                add(mul(random_read(), fconst(0.25 + rng.uniform())),
                    random_read())));
        }
        std::vector<StmtPtr> jb;
        jb.push_back(forLoop("i", iconst(2), iconst(2 + cols),
                             std::move(body)));
        std::vector<StmtPtr> kb;
        kb.push_back(forLoop("j", iconst(2), iconst(2 + rows),
                             std::move(jb)));
        // Slabs never reference each other (k subscript is exactly k),
        // so the outermost loop is parallel by construction.
        kernel.body.push_back(forLoop("k", iconst(0), iconst(slabs),
                                      std::move(kb), 1, true));
        assignRefIds(kernel);
        layoutArrays(kernel);
    }

    std::uint64_t
    evalChecksum(const Kernel &k) const
    {
        kisa::MemoryImage mem;
        Rng rng(99);
        for (const auto &array : kernel.arrays)
            for (std::int64_t e = 0; e < array.numElems(); ++e)
                mem.stF64(array.base + Addr(e) * 8, rng.uniform());
        Evaluator ev(k, mem);
        ev.run();
        return checksumArrays(k, mem);
    }
};

TEST_P(FuzzSeeds, DeepNestMiddleJamPreservesSemantics)
{
    RandomNest3 rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    for (int factor : {2, 3}) {
        Kernel x = rk.kernel.clone();
        auto nests = analysis::findLoopNests(x);
        ASSERT_EQ(nests[0].depth(), 3);
        if (!transform::unrollAndJam(x, *nests[0].outer(1), factor))
            continue;
        EXPECT_EQ(rk.evalChecksum(x), golden)
            << "middle jam by " << factor << "\n" << x.toString();
    }
}

TEST_P(FuzzSeeds, DeepNestOuterJamPreservesSemantics)
{
    RandomNest3 rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    for (int factor : {2, 4}) {
        Kernel x = rk.kernel.clone();
        auto nests = analysis::findLoopNests(x);
        if (!transform::unrollAndJam(x, *nests[0].outer(2), factor))
            continue;
        EXPECT_EQ(rk.evalChecksum(x), golden)
            << "outer jam by " << factor << "\n" << x.toString();
    }
}

TEST_P(FuzzSeeds, DeepNestFullDriverPreservesSemantics)
{
    RandomNest3 rk(GetParam());
    const std::uint64_t golden = rk.evalChecksum(rk.kernel);
    Kernel x = rk.kernel.clone();
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    transform::applyClustering(x, params);
    EXPECT_EQ(rk.evalChecksum(x), golden) << x.toString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(0, 24));

} // namespace
} // namespace mpc
