/**
 * @file
 * Code-generator tests: three-way semantic checks (IR evaluator vs the
 * KISA interpreter running the lowered program), displacement folding,
 * clustered scheduling, multiprocessor partitioning, and an end-to-end
 * check that a driver-clustered kernel actually runs faster on the
 * simulated machine.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "common/rng.hh"
#include "ir/eval.hh"
#include "ir/kernel.hh"
#include "kisa/interp.hh"
#include "system/system.hh"
#include "transform/driver.hh"
#include "transform/transforms.hh"

namespace mpc::codegen
{
namespace
{

using namespace mpc::ir;

std::vector<ExprPtr>
subs2(ExprPtr a, ExprPtr b)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
}

std::vector<ExprPtr>
subs1(ExprPtr a)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
}

Kernel
stencilKernel(std::int64_t rows = 20, std::int64_t cols = 36)
{
    // B[j][i] = 0.25 * (A[j][i-1] + A[j][i+1] + A[j-1][i] + A[j+1][i])
    Kernel k;
    k.name = "stencil";
    Array *a = k.addArray("A", ScalType::F64, {rows + 2, cols + 2});
    Array *b = k.addArray("B", ScalType::F64, {rows + 2, cols + 2});
    auto at = [&](ExprPtr r, ExprPtr c) {
        return aref(a, subs2(std::move(r), std::move(c)));
    };
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(b, subs2(varref("j"), varref("i"))),
        mul(fconst(0.25),
            add(add(at(varref("j"), sub(varref("i"), iconst(1))),
                    at(varref("j"), add(varref("i"), iconst(1)))),
                add(at(sub(varref("j"), iconst(1)), varref("i")),
                    at(add(varref("j"), iconst(1)), varref("i")))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(1), iconst(cols + 1),
                         std::move(ib)));
    k.body.push_back(forLoop("j", iconst(1), iconst(rows + 1),
                             std::move(ob), 1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

void
fillArrays(const Kernel &k, kisa::MemoryImage &mem, std::uint64_t seed)
{
    Rng rng(seed);
    for (const auto &array : k.arrays) {
        for (std::int64_t e = 0; e < array.numElems(); ++e) {
            if (array.elem == ScalType::F64)
                mem.stF64(array.base + Addr(e) * 8, rng.uniform());
            else
                mem.st64(array.base + Addr(e) * 8, rng.below(100));
        }
    }
}

/** Three-way check: IR evaluator vs interpreter on lowered code. */
void
expectLoweringCorrect(const Kernel &k, const CodegenOptions &options = {})
{
    kisa::MemoryImage m_ir, m_prog;
    fillArrays(k, m_ir, 42);
    fillArrays(k, m_prog, 42);

    Evaluator ev(k, m_ir);
    ev.run();

    kisa::Program program = lower(k, options);
    kisa::Interpreter interp(m_prog);
    interp.addCore(program);
    interp.run(1ull << 28);

    EXPECT_EQ(checksumArrays(k, m_ir), checksumArrays(k, m_prog))
        << k.toString() << "\n" << program.disassemble();
}

TEST(Codegen, StencilMatchesEvaluator)
{
    expectLoweringCorrect(stencilKernel());
}

TEST(Codegen, ClusteredScheduleSameSemantics)
{
    CodegenOptions options;
    options.clusteredSchedule = true;
    expectLoweringCorrect(stencilKernel(), options);
}

TEST(Codegen, DisplacementFoldingUsed)
{
    // Lowered unrolled code must fold +-1 column offsets into load
    // displacements rather than materializing them.
    Kernel k = stencilKernel();
    kisa::Program program = lower(k);
    int nonzero_disp_loads = 0;
    for (const auto &in : program.code) {
        if ((in.op == kisa::Op::LdF || in.op == kisa::Op::LdI) &&
            in.imm != 0)
            ++nonzero_disp_loads;
    }
    EXPECT_GE(nonzero_disp_loads, 2);
}

TEST(Codegen, TransformedKernelMatchesEvaluator)
{
    Kernel k = stencilKernel(21, 37);  // awkward trips -> postludes
    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = loweredBodySize;
    auto report = transform::applyClustering(k, params);
    EXPECT_GT(report.nests[0].unrollDegree, 1);
    expectLoweringCorrect(k);
    CodegenOptions clustered;
    clustered.clusteredSchedule = true;
    expectLoweringCorrect(k, clustered);
}

TEST(Codegen, PointerChaseLowersAndRuns)
{
    // for j in 0..chains: for (p = heads[j]; p; p = p->next)
    //     sum[j] = sum[j] + p->data
    Kernel k;
    k.name = "chase";
    Array *heads = k.addArray("heads", ScalType::I64, {6});
    Array *sums = k.addArray("sums", ScalType::F64, {6});
    k.declareScalar("p", ScalType::I64);
    std::vector<StmtPtr> pb;
    pb.push_back(assign(aref(sums, subs1(varref("j"))),
                        add(aref(sums, subs1(varref("j"))),
                            deref(varref("p"), 8, ScalType::F64))));
    std::vector<StmtPtr> ob;
    ob.push_back(ptrLoop("p", aref(heads, subs1(varref("j"))), 0,
                         std::move(pb)));
    k.body.push_back(forLoop("j", iconst(0), iconst(6), std::move(ob),
                             1, true));
    assignRefIds(k);
    layoutArrays(k);

    // Build chains outside the declared arrays.
    auto init_chains = [&](kisa::MemoryImage &m) {
        Addr node = 0x50000000;
        Rng rng(3);
        for (int j = 0; j < 6; ++j) {
            Addr prev = 0;
            const int len = 2 + j;
            std::vector<Addr> nodes;
            for (int n = 0; n < len; ++n, node += 128)
                nodes.push_back(node);
            for (int n = len - 1; n >= 0; --n) {
                m.st64(nodes[size_t(n)], prev);
                m.stF64(nodes[size_t(n)] + 8, rng.uniform());
                prev = nodes[size_t(n)];
            }
            m.st64(k.findArray("heads")->base + Addr(j) * 8, prev);
        }
    };

    // Cluster it (pointer jam) and check against the base evaluator.
    Kernel base = k.clone();
    transform::DriverParams params;
    params.lp = 4;
    params.maxUnroll = 4;
    params.bodySize = loweredBodySize;
    transform::applyClustering(k, params);

    kisa::MemoryImage m_base, m_prog;
    init_chains(m_base);
    init_chains(m_prog);
    Evaluator ev(base, m_base);
    ev.run();
    kisa::Program program = lower(k);
    kisa::Interpreter interp(m_prog);
    interp.addCore(program);
    interp.run(1u << 24);
    EXPECT_EQ(checksumArrays(base, m_base), checksumArrays(k, m_prog));
}

TEST(Codegen, PartitioningCoversIterationSpace)
{
    // 4 cores each add 1 to their block of X; all elements must be 1.
    Kernel k;
    k.name = "part";
    Array *x = k.addArray("X", ScalType::I64, {103});  // awkward size
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(x, subs1(varref("i"))),
                        add(aref(x, subs1(varref("i"))), iconst(1))));
    k.body.push_back(forLoop("i", iconst(0), iconst(103), std::move(ib),
                             1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);

    kisa::MemoryImage mem;
    auto programs = lowerForCores(k, 4, false);
    kisa::Interpreter interp(mem);
    for (auto &p : programs)
        interp.addCore(p);
    interp.run(1u << 24);
    for (int e = 0; e < 103; ++e)
        EXPECT_EQ(mem.ld64(x->base + Addr(e) * 8), 1u) << e;
}

TEST(Codegen, LoweredBodySizeIsSane)
{
    Kernel k = stencilKernel();
    auto nests = analysis::findLoopNests(k);
    const int size = loweredBodySize(k, *nests[0].inner());
    // 4 loads + 1 store + FP ops + addressing + loop overhead.
    EXPECT_GT(size, 10);
    EXPECT_LT(size, 60);
}

TEST(Codegen, ClusteredScheduleHoistsLoads)
{
    // In an unroll-and-jammed body, the clustered schedule must place
    // the independent loads ahead of the FP work.
    Kernel k = stencilKernel(24, 36);
    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = loweredBodySize;
    transform::applyClustering(k, params);

    CodegenOptions plain, clustered;
    clustered.clusteredSchedule = true;
    kisa::Program p1 = lower(k, plain);
    kisa::Program p2 = lower(k, clustered);
    ASSERT_EQ(p1.size(), p2.size());

    // Measure the position of the 4th load in the main jammed body:
    // find the longest straight-line run and check load concentration
    // in its first half.
    auto load_skew = [](const kisa::Program &p) {
        // Crude: over the whole program, average index of loads.
        double sum_pos = 0;
        int loads = 0;
        for (size_t i = 0; i < p.code.size(); ++i) {
            if (p.code[i].op == kisa::Op::LdF) {
                sum_pos += static_cast<double>(i);
                ++loads;
            }
        }
        return loads ? sum_pos / loads : 0.0;
    };
    EXPECT_LT(load_skew(p2), load_skew(p1));
}


TEST(Codegen, StridedParallelPartitionCoversSpace)
{
    // A step-8 tile loop partitioned over 3 cores must cover every
    // tile exactly once (chunks are step-aligned).
    Kernel k;
    k.name = "tiles";
    Array *x = k.addArray("X", ScalType::I64, {96});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(x, subs1(varref("t"))),
                        add(aref(x, subs1(varref("t"))), iconst(1))));
    k.body.push_back(forLoop("t", iconst(0), iconst(96), std::move(ib),
                             8, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);

    kisa::MemoryImage mem;
    auto programs = lowerForCores(k, 3, false);
    kisa::Interpreter interp(mem);
    for (auto &p : programs)
        interp.addCore(p);
    interp.run(1u << 22);
    for (int e = 0; e < 96; e += 8)
        EXPECT_EQ(mem.ld64(x->base + Addr(e) * 8), 1u) << e;
    for (int e = 1; e < 96; e += 8)
        EXPECT_EQ(mem.ld64(x->base + Addr(e) * 8), 0u) << e;
}

TEST(Codegen, PrefetchStatementLowersToPrefetchOp)
{
    Kernel k = stencilKernel(8, 12);
    transform::insertPrefetches(k, 4);
    auto program = lower(k);
    int prefetches = 0;
    for (const auto &in : program.code)
        prefetches += in.op == kisa::Op::Prefetch;
    EXPECT_GE(prefetches, 2);
    EXPECT_NE(program.disassemble().find("prefetch"),
              std::string::npos);
}

TEST(Codegen, LeadingRefsRestrictHoisting)
{
    // With an explicit leading set, only those loads get the top-of-
    // body packing treatment.
    Kernel k = stencilKernel(16, 24);
    ir::assignRefIds(k);
    CodegenOptions all, none;
    all.clusteredSchedule = true;
    none.clusteredSchedule = true;
    none.leadingRefs = {9999};   // nothing in the kernel matches
    auto p_all = lower(k, all);
    auto p_none = lower(k, none);
    auto first_load_pos = [](const kisa::Program &p) {
        for (size_t i = 0; i < p.code.size(); ++i)
            if (p.code[i].op == kisa::Op::LdF)
                return i;
        return p.code.size();
    };
    // With no leading loads, loads are not prioritized, so the first
    // load appears no earlier than in the all-leading schedule.
    EXPECT_LE(first_load_pos(p_all), first_load_pos(p_none));
}

TEST(Codegen, EndToEndClusteringSpeedsUpSimulation)
{
    // The headline effect: driver-clustered code must beat the base
    // code on the simulated uniprocessor for a miss-dominated sweep.
    auto make = [](bool clustered) {
        Kernel k;
        k.name = "sweep";
        Array *a = k.addArray("A", ScalType::F64, {256, 128});
        Array *b = k.addArray("B", ScalType::F64, {256, 128});
        std::vector<StmtPtr> ib;
        ib.push_back(assign(
            aref(b, subs2(varref("j"), varref("i"))),
            add(aref(a, subs2(varref("j"), varref("i"))), fconst(1.0))));
        std::vector<StmtPtr> ob;
        ob.push_back(forLoop("i", iconst(0), iconst(128),
                             std::move(ib)));
        k.body.push_back(forLoop("j", iconst(0), iconst(256),
                                 std::move(ob), 1, true));
        assignRefIds(k);
        layoutArrays(k);
        if (clustered) {
            transform::DriverParams params;
            params.lp = 10;
            params.bodySize = loweredBodySize;
            transform::applyClustering(k, params);
        }
        CodegenOptions options;
        options.clusteredSchedule = clustered;
        return std::pair<Kernel, kisa::Program>(k.clone(),
                                                lower(k, options));
    };

    Tick cycles[2];
    double data_read[2];
    for (int variant = 0; variant < 2; ++variant) {
        auto [k, program] = make(variant == 1);
        kisa::MemoryImage mem;
        fillArrays(k, mem, 7);
        std::vector<kisa::Program> ps;
        ps.push_back(std::move(program));
        // Small L2 so the sweep misses (working set 512 KB).
        sys::System system(sys::baseConfig(64 * 1024), std::move(ps),
                           mem);
        auto r = system.run();
        cycles[variant] = r.cycles;
        data_read[variant] = r.dataReadCycles;
    }
    // Clustering must reduce both total time and read-stall time
    // substantially (the paper sees 11-49% total on the uniprocessor).
    EXPECT_LT(static_cast<double>(cycles[1]),
              0.85 * static_cast<double>(cycles[0]));
    EXPECT_LT(data_read[1], 0.7 * data_read[0]);
}

} // namespace
} // namespace mpc::codegen
