/**
 * @file
 * Fast-path validation: quiescence skip-ahead must be a pure host-side
 * optimization. Every simulated number — cycle counts, the per-core
 * stall-slot breakdown, cache/MSHR statistics, coherence traffic —
 * must be bit-identical between skip-ahead and the retained reference
 * cycle-step mode. Also covers the parallel experiment scheduler:
 * stable result ordering and determinism at any thread count.
 */

#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "system/system.hh"
#include "transform/transforms.hh"
#include "workloads/workload.hh"

namespace mpc
{
namespace
{

void
expectSameSummary(const StatSummary &a, const StatSummary &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
}

void
expectSameHistogram(const OccupancyHistogram &a,
                    const OccupancyHistogram &b, const char *what)
{
    ASSERT_EQ(a.maxLevel(), b.maxLevel()) << what;
    EXPECT_EQ(a.totalTicks(), b.totalTicks()) << what;
    for (int l = 0; l <= a.maxLevel(); ++l)
        EXPECT_EQ(a.ticksAt(l), b.ticksAt(l)) << what << " level " << l;
}

void
expectSameCacheStats(const mem::Cache::Stats &a,
                     const mem::Cache::Stats &b, const char *what)
{
    EXPECT_EQ(a.loads, b.loads) << what;
    EXPECT_EQ(a.loadHits, b.loadHits) << what;
    EXPECT_EQ(a.loadMisses, b.loadMisses) << what;
    EXPECT_EQ(a.loadCoalesced, b.loadCoalesced) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.writeHits, b.writeHits) << what;
    EXPECT_EQ(a.writeMisses, b.writeMisses) << what;
    EXPECT_EQ(a.writeCoalesced, b.writeCoalesced) << what;
    EXPECT_EQ(a.upgrades, b.upgrades) << what;
    EXPECT_EQ(a.rejectsPort, b.rejectsPort) << what;
    EXPECT_EQ(a.rejectsMshr, b.rejectsMshr) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
    EXPECT_EQ(a.fills, b.fills) << what;
    expectSameSummary(a.missLatency, b.missLatency, what);
    ASSERT_EQ(a.perRef.size(), b.perRef.size()) << what;
    a.perRef.forEach([&](std::uint32_t ref, const auto &counts) {
        const auto *other = b.perRef.find(ref);
        ASSERT_NE(other, nullptr) << what << " ref " << ref;
        EXPECT_EQ(counts.accesses, other->accesses) << what;
        EXPECT_EQ(counts.misses, other->misses) << what;
    });
}

void
expectBitIdentical(const sys::RunResult &skip, const sys::RunResult &ref)
{
    EXPECT_EQ(skip.cycles, ref.cycles);
    EXPECT_EQ(skip.instructions, ref.instructions);

    // The breakdown doubles are sums of identical integer slot counts
    // divided by identical constants, so they too must match exactly.
    EXPECT_EQ(skip.busyCycles, ref.busyCycles);
    EXPECT_EQ(skip.dataReadCycles, ref.dataReadCycles);
    EXPECT_EQ(skip.dataWriteCycles, ref.dataWriteCycles);
    EXPECT_EQ(skip.syncCycles, ref.syncCycles);
    EXPECT_EQ(skip.cpuCycles, ref.cpuCycles);

    ASSERT_EQ(skip.cores.size(), ref.cores.size());
    for (std::size_t i = 0; i < skip.cores.size(); ++i) {
        const auto &a = skip.cores[i];
        const auto &b = ref.cores[i];
        EXPECT_EQ(a.doneTick, b.doneTick) << "core " << i;
        EXPECT_EQ(a.retired, b.retired) << "core " << i;
        EXPECT_EQ(a.loads, b.loads) << "core " << i;
        EXPECT_EQ(a.stores, b.stores) << "core " << i;
        EXPECT_EQ(a.mispredicts, b.mispredicts) << "core " << i;
        EXPECT_EQ(a.branches, b.branches) << "core " << i;
        EXPECT_EQ(a.busySlots, b.busySlots) << "core " << i;
        EXPECT_EQ(a.dataReadSlots, b.dataReadSlots) << "core " << i;
        EXPECT_EQ(a.dataWriteSlots, b.dataWriteSlots) << "core " << i;
        EXPECT_EQ(a.syncSlots, b.syncSlots) << "core " << i;
        EXPECT_EQ(a.cpuSlots, b.cpuSlots) << "core " << i;
        expectSameSummary(a.loadMissLatency, b.loadMissLatency, "lml");
        expectSameSummary(a.longMissLatency, b.longMissLatency, "xml");
    }

    expectSameCacheStats(skip.l1, ref.l1, "l1");
    expectSameCacheStats(skip.l2, ref.l2, "l2");
    expectSameHistogram(skip.l2ReadMshr, ref.l2ReadMshr, "readMshr");
    expectSameHistogram(skip.l2TotalMshr, ref.l2TotalMshr, "totalMshr");

    EXPECT_EQ(skip.busUtilization, ref.busUtilization);
    EXPECT_EQ(skip.bankUtilization, ref.bankUtilization);

    EXPECT_EQ(skip.fabric.localReqs, ref.fabric.localReqs);
    EXPECT_EQ(skip.fabric.remoteReqs, ref.fabric.remoteReqs);
    EXPECT_EQ(skip.fabric.cacheToCache, ref.fabric.cacheToCache);
    EXPECT_EQ(skip.fabric.invalidations, ref.fabric.invalidations);
    EXPECT_EQ(skip.fabric.writebacks, ref.fabric.writebacks);
    expectSameSummary(skip.fabric.localLatency, ref.fabric.localLatency,
                      "localLat");
    expectSameSummary(skip.fabric.remoteLatency,
                      ref.fabric.remoteLatency, "remoteLat");
    expectSameSummary(skip.fabric.c2cLatency, ref.fabric.c2cLatency,
                      "c2cLat");
}

sys::RunResult
runMode(const std::string &app, int procs, bool clustered,
        bool skip_ahead)
{
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeByName(app, size);
    harness::RunSpec spec;
    spec.config.skipAhead = skip_ahead;
    spec.procs = procs;
    spec.clustered = clustered;
    return harness::runWorkload(w, spec).result;
}

void
expectModeEquivalence(const std::string &app, int procs, bool clustered)
{
    SCOPED_TRACE(app + "/" + std::to_string(procs) + "p" +
                 (clustered ? "/clust" : "/base"));
    expectBitIdentical(runMode(app, procs, clustered, true),
                       runMode(app, procs, clustered, false));
}

TEST(SkipAhead, UniprocessorBitIdentical)
{
    // Ocean: stencil loads; MST: pointer chases with long stalls
    // (the skip-heavy shape); Mp3d: large-body window pressure.
    expectModeEquivalence("ocean", 1, false);
    expectModeEquivalence("mst", 1, false);
    expectModeEquivalence("mp3d", 1, false);
}

TEST(SkipAhead, UniprocessorClusteredBitIdentical)
{
    // Transformed kernels cluster misses, creating the long quiescent
    // stretches skip-ahead exploits; attribution must still match.
    expectModeEquivalence("ocean", 1, true);
    expectModeEquivalence("em3d", 1, true);
}

TEST(SkipAhead, MultiprocessorBitIdentical)
{
    // Barriers (ocean) and flag-based pipelining (lu) exercise the
    // sync wake paths: a barrier release must wake later-ordered cores
    // the same cycle and earlier-ordered cores the next cycle, exactly
    // as the reference loop does.
    expectModeEquivalence("ocean", 4, false);
    expectModeEquivalence("lu", 4, false);
}

TEST(SkipAhead, MultiprocessorClusteredBitIdentical)
{
    expectModeEquivalence("ocean", 4, true);
}

sys::RunResult
runPrefetchVariant(const std::string &app, int distance, bool skip_ahead)
{
    // Mirrors bench_prefetch's prefetch-only variant (ablation A5):
    // software prefetch instructions ahead of the leading references,
    // lowered directly rather than through RunSpec.
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeByName(app, size);
    ir::Kernel kernel = w.kernel.clone();
    transform::insertPrefetches(kernel, distance);
    auto programs = codegen::lowerForCores(kernel, 1, false, {});
    kisa::MemoryImage image;
    w.init(image);
    auto config = harness::scaleConfig(sys::baseConfig(), w);
    config.skipAhead = skip_ahead;
    sys::System system(config, std::move(programs), image);
    return system.run();
}

TEST(SkipAhead, PrefetchWorkloadBitIdentical)
{
    // The A5 prefetch variant fills the memory queue with non-blocking
    // prefetches whose completions are the only wake-up events during
    // long stalls: skip-ahead must land on those completion ticks
    // exactly, or prefetched lines arrive a cycle late and every
    // downstream stat shifts.
    for (const char *app : {"ocean", "latbench"}) {
        SCOPED_TRACE(app);
        expectBitIdentical(runPrefetchVariant(app, 4, true),
                           runPrefetchVariant(app, 4, false));
    }
}

TEST(SkipAhead, LatbenchSweepBitIdentical)
{
    // The latency microbenchmark is nearly pure pointer-chase stall —
    // the maximal skip opportunity, so mis-attributed catch-up slots
    // would show up here first.
    expectModeEquivalence("latbench", 1, false);
    expectModeEquivalence("latbench", 1, true);
}

TEST(ParallelRunner, ResultsInJobOrderAtAnyThreadCount)
{
    for (int threads : {1, 2, 4, 8}) {
        std::vector<int> out(16, -1);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 16; ++i)
            jobs.push_back([&out, i] { out[static_cast<size_t>(i)] = i; });
        harness::ParallelRunner(threads).run(jobs);
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(out[static_cast<size_t>(i)], i)
                << "threads " << threads;
    }
}

TEST(ParallelRunner, PropagatesJobExceptions)
{
    std::vector<std::function<void()>> jobs;
    std::vector<int> ran(4, 0);
    for (int i = 0; i < 4; ++i)
        jobs.push_back([&ran, i] {
            ran[static_cast<size_t>(i)] = 1;
            if (i == 2)
                throw std::runtime_error("job failure");
        });
    EXPECT_THROW(harness::ParallelRunner(2).run(jobs),
                 std::runtime_error);
    // Remaining jobs still settled their slots before the rethrow.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ran[static_cast<size_t>(i)], 1);
}

TEST(ParallelRunner, PairSweepDeterministicAcrossThreadCounts)
{
    workloads::SizeParams size;
    size.scale = 1;
    std::vector<harness::PairJob> jobs;
    for (const char *name : {"ocean", "mst"}) {
        harness::PairJob job;
        job.label = name;
        job.workload = workloads::makeByName(name, size);
        job.config = sys::baseConfig();
        job.procs = 1;
        jobs.push_back(std::move(job));
    }
    const auto serial = harness::runPairsParallel(jobs, 1);
    const auto pooled = harness::runPairsParallel(jobs, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        expectBitIdentical(serial[i].pair.base.result,
                           pooled[i].pair.base.result);
        expectBitIdentical(serial[i].pair.clust.result,
                           pooled[i].pair.clust.result);
    }
}

TEST(ParallelRunner, DefaultThreadsIsPositive)
{
    EXPECT_GE(harness::ParallelRunner::defaultThreads(), 1);
    EXPECT_GE(harness::ParallelRunner(0).threads(), 1);
    EXPECT_EQ(harness::ParallelRunner(3).threads(), 3);
}

} // namespace
} // namespace mpc
