/**
 * @file
 * System-level tests: latency calibration against the paper's Table 1
 * bands, multiprocessor coherence and synchronization, MSHR occupancy
 * statistics, and determinism.
 */

#include <gtest/gtest.h>

#include "kisa/program.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;
using kisa::Reg;

Program
coldMissProgram()
{
    AsmBuilder b("cold");
    b.iLoadImm(1, 0x100000);
    b.ldF(2, 1, 0);
    b.halt();
    return b.finish();
}

TEST(Calibration, UniprocessorLocalMissNear85Cycles)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(coldMissProgram());
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    // Paper: 85 cycles local memory latency without contention.
    EXPECT_NEAR(r.cores[0].loadMissLatency.mean(), 85.0, 8.0);
}

TEST(Calibration, RemoteMissInPaperBand)
{
    // Node 0 chases pointers through lines homed on other nodes.
    kisa::MemoryImage image;
    for (int i = 0; i < 16; ++i)
        image.st64(0x100000 + static_cast<Addr>(i) * 64,
                   0x100000 + static_cast<Addr>(i + 1) * 64);
    std::vector<Program> ps;
    for (int c = 0; c < 16; ++c) {
        AsmBuilder b("p");
        if (c == 0) {
            b.iLoadImm(1, 0x100000);
            for (int i = 0; i < 16; ++i)
                b.ldI(1, 1, 0);
        }
        b.barrier();
        b.halt();
        ps.push_back(b.finish());
    }
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    ASSERT_GT(r.fabric.remoteLatency.count(), 8u);
    // Paper: 180-260 cycles remote without contention.
    EXPECT_GT(r.fabric.remoteLatency.mean(), 150.0);
    EXPECT_LT(r.fabric.remoteLatency.mean(), 280.0);
}

TEST(Calibration, CacheToCacheCostsMoreThanRemote)
{
    // Node 1 dirties a chain of lines; node 0 then chases it.
    kisa::MemoryImage image;
    std::vector<Program> ps;
    for (int c = 0; c < 16; ++c) {
        AsmBuilder b("p");
        if (c == 1) {
            b.iLoadImm(1, 0x100000);
            for (int i = 0; i < 16; ++i) {
                b.iLoadImm(2, 0x100000 + (i + 1) * 64);
                b.stI(1, i * 64, 2);
            }
            // Give the write buffer time to drain before the barrier.
            for (int k = 0; k < 600; ++k)
                b.iAddImm(200, 0, k);
        }
        b.barrier();
        if (c == 0) {
            b.iLoadImm(1, 0x100000);
            for (int i = 0; i < 16; ++i)
                b.ldI(1, 1, 0);
        }
        b.halt();
        ps.push_back(b.finish());
    }
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    ASSERT_GT(r.fabric.c2cLatency.count(), 4u);
    EXPECT_GT(r.fabric.c2cLatency.mean(), r.fabric.remoteLatency.mean());
    EXPECT_LT(r.fabric.c2cLatency.mean(), 330.0);
}

TEST(Calibration, ExemplarMissNear500Ns)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(coldMissProgram());
    sys::System s(sys::exemplarConfig(), std::move(ps), image);
    auto r = s.run();
    const double ns = r.cores[0].loadMissLatency.mean() * r.nsPerCycle;
    // Paper: lat_mem_rd measures 502 ns on the Exemplar.
    EXPECT_NEAR(ns, 502.0, 60.0);
}

TEST(MultiProc, ProducerConsumerThroughFlags)
{
    // LU-style flag sync: node 1 produces, sets flag; node 0 consumes.
    kisa::MemoryImage image;
    std::vector<Program> ps;
    for (int c = 0; c < 2; ++c) {
        AsmBuilder b("p");
        if (c == 1) {
            b.iLoadImm(1, 0x200000);    // data
            b.iLoadImm(2, 4242);
            b.stI(1, 0, 2);
            b.iLoadImm(3, 0x300000);    // flag
            b.iLoadImm(4, 1);
            b.stI(3, 0, 4);
        } else {
            b.iLoadImm(3, 0x300000);
            b.iLoadImm(4, 1);
            b.flagWait(3, 0, 4);
            b.iLoadImm(1, 0x200000);
            b.ldI(5, 1, 0);
        }
        b.halt();
        ps.push_back(b.finish());
    }
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    EXPECT_EQ(s.core(0).regs().intRegs[5], 4242);
    // The consumer's wait shows up as sync time.
    EXPECT_GT(r.cores[0].syncSlots, 0u);
}

TEST(MultiProc, BarrierOrdersPhases)
{
    // All 4 cores increment their slot, barrier, then core 0 sums.
    kisa::MemoryImage image;
    const Addr base = 0x400000;
    std::vector<Program> ps;
    for (int c = 0; c < 4; ++c) {
        AsmBuilder b("p");
        b.iLoadImm(1, static_cast<std::int64_t>(base + c * 64));
        b.iLoadImm(2, c + 1);
        b.stI(1, 0, 2);
        b.barrier();
        if (c == 0) {
            b.iLoadImm(3, static_cast<std::int64_t>(base));
            b.iLoadImm(4, 0);
            for (int i = 0; i < 4; ++i) {
                b.ldI(5, 3, i * 64);
                b.iAdd(4, 4, 5);
            }
        }
        b.halt();
        ps.push_back(b.finish());
    }
    sys::System s(sys::baseConfig(), std::move(ps), image);
    s.run();
    EXPECT_EQ(s.core(0).regs().intRegs[4], 1 + 2 + 3 + 4);
}

TEST(MultiProc, PlacementPolicyHomesRegions)
{
    coherence::PlacementPolicy p(4, 64);
    p.addBlockRegion(0x1000, 4 * 1024);
    EXPECT_EQ(p.home(0x1000), 0);
    EXPECT_EQ(p.home(0x1000 + 1024), 1);
    EXPECT_EQ(p.home(0x1000 + 3 * 1024 + 512), 3);
    // Outside a region: line interleave.
    EXPECT_EQ(p.home(0x100000), (0x100000 / 64) % 4);
}

TEST(Stats, MshrHistogramSeesClusteredMisses)
{
    // Ten independent misses back-to-back: several MSHRs must be
    // simultaneously busy at some point (Figure 4's metric).
    AsmBuilder b("clu");
    b.iLoadImm(1, 0x100000);
    for (int i = 0; i < 10; ++i)
        b.ldF(static_cast<Reg>(10 + i), 1, i * 4096);
    b.halt();
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(b.finish());
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    EXPECT_GT(r.l2ReadMshr.fracAtLeast(4), 0.0);
    EXPECT_GE(r.l2TotalMshr.fracAtLeast(1), r.l2ReadMshr.fracAtLeast(1));
}

TEST(Stats, BreakdownCoversRuntime)
{
    AsmBuilder b("mix");
    b.iLoadImm(1, 0x100000);
    b.ldF(2, 1, 0);
    b.fAdd(3, 2, 2);
    for (int i = 0; i < 50; ++i)
        b.fMul(3, 3, 2);
    b.halt();
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(b.finish());
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    const double total = r.busyCycles + r.dataReadCycles +
                         r.dataWriteCycles + r.syncCycles + r.cpuCycles;
    EXPECT_NEAR(total, static_cast<double>(r.cycles),
                static_cast<double>(r.cycles) * 0.05 + 4.0);
}


TEST(MultiProc, ExemplarSmpBusSharedContention)
{
    // Four cores streaming simultaneously over the Exemplar-like SMP
    // bus take longer per core than one core alone (shared bus).
    auto make = [](int stride_lines) {
        AsmBuilder b("stream");
        b.iLoadImm(1, 0x100000 + stride_lines * 32);
        for (int i = 0; i < 24; ++i)
            b.ldF(2, 1, i * 8192);
        b.halt();
        return b.finish();
    };
    Tick solo, crowded;
    {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(make(0));
        sys::System s(sys::exemplarConfig(), std::move(ps), image);
        solo = s.run().cycles;
    }
    {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        for (int c = 0; c < 4; ++c)
            ps.push_back(make(c * 1024));
        sys::System s(sys::exemplarConfig(), std::move(ps), image);
        crowded = s.run().cycles;
    }
    EXPECT_GT(crowded, solo + solo / 4);
}

TEST(MultiProc, SyncStallAttributedAtBarrier)
{
    // Core 1 arrives at the barrier long after core 0: core 0
    // accumulates roughly that much sync time. The delay chain must
    // exceed the instruction window, because barrier arrival happens
    // at dispatch (conservative release semantics).
    std::vector<Program> ps;
    for (int c = 0; c < 2; ++c) {
        AsmBuilder b("p");
        if (c == 1) {
            b.fLoadImm(1, 1.01);
            for (int i = 0; i < 120; ++i)
                b.fSqrt(1, 1);
        }
        b.barrier();
        b.halt();
        ps.push_back(b.finish());
    }
    kisa::MemoryImage image;
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    const double sync0 =
        static_cast<double>(r.cores[0].syncSlots) / 4.0;
    EXPECT_GT(sync0, 800.0);
    EXPECT_LT(static_cast<double>(r.cores[1].syncSlots) / 4.0, 200.0);
}

TEST(Stats, PerRefCountsFlowThroughSystem)
{
    AsmBuilder b("refs");
    b.iLoadImm(1, 0x100000);
    for (int i = 0; i < 12; ++i)
        b.ldF(2, 1, i * 8, /*ref_id=*/5);   // one stream, refId 5
    b.halt();
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(b.finish());
    sys::System s(sys::baseConfig(), std::move(ps), image);
    auto r = s.run();
    ASSERT_TRUE(r.l1.perRef.contains(5));
    EXPECT_EQ(r.l1.perRef.at(5).accesses, 12u);
    // 12 words span 96 bytes = 2 lines -> 2 line fetches at the L1
    // (the rest hit or coalesce).
    EXPECT_LE(r.l1.perRef.at(5).misses, 3u);
    EXPECT_GE(r.l1.perRef.at(5).misses, 2u);
}

TEST(Determinism, IdenticalRunsIdenticalCycles)
{
    auto make = [] {
        AsmBuilder b("det");
        b.iLoadImm(1, 0x100000);
        for (int i = 0; i < 30; ++i) {
            b.ldF(2, 1, i * 512);
            b.fAdd(3, 3, 2);
        }
        b.halt();
        return b.finish();
    };
    Tick cycles[2];
    for (int trial = 0; trial < 2; ++trial) {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(make());
        sys::System s(sys::baseConfig(), std::move(ps), image);
        cycles[trial] = s.run().cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Configs, PresetsDiffer)
{
    const auto base = sys::baseConfig();
    const auto ghz = sys::oneGHzConfig();
    const auto exem = sys::exemplarConfig();
    EXPECT_EQ(ghz.membus.bankAccessLatency,
              2 * base.membus.bankAccessLatency);
    EXPECT_TRUE(exem.hier.singleLevel);
    EXPECT_TRUE(exem.smpBus);
    EXPECT_EQ(exem.core.windowSize, 56);
    EXPECT_EQ(exem.hier.l1.lineBytes, 32);
    EXPECT_EQ(base.core.windowSize, 64);
}

} // namespace
} // namespace mpc
