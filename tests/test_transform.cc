/**
 * @file
 * Tests for the clustering transformations. Every structural
 * transformation is also checked semantically: the transformed kernel
 * must produce bit-identical array contents (IR evaluator) to the
 * original.
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "common/rng.hh"
#include "ir/eval.hh"
#include "ir/kernel.hh"
#include "transform/driver.hh"
#include "transform/legality.hh"
#include "transform/transforms.hh"

namespace mpc::transform
{
namespace
{

using namespace mpc::ir;

std::vector<ExprPtr>
subs2(ExprPtr a, ExprPtr b)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
}

std::vector<ExprPtr>
subs1(ExprPtr a)
{
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
}

/** Figure 2(a) with distinct source/dest: B[j][i] = A[j][i] * 2 + j. */
Kernel
sweepKernel(std::int64_t rows = 24, std::int64_t cols = 40)
{
    Kernel k;
    k.name = "sweep";
    Array *a = k.addArray("A", ScalType::F64, {rows, cols});
    Array *b = k.addArray("B", ScalType::F64, {rows, cols});
    (void)b;
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(k.findArray("B"), subs2(varref("j"), varref("i"))),
        add(mul(aref(a, subs2(varref("j"), varref("i"))), fconst(2.0)),
            varref("j"))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(cols), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(rows),
                             std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

void
fillArray(const Array &array, kisa::MemoryImage &mem, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::int64_t e = 0; e < array.numElems(); ++e) {
        if (array.elem == ScalType::F64)
            mem.stF64(array.base + static_cast<Addr>(e) * 8,
                      rng.uniform());
        else
            mem.st64(array.base + static_cast<Addr>(e) * 8,
                     rng.below(1000));
    }
}

/** Run both kernels on identically initialized memories and compare
 *  all array contents. */
void
expectEquivalent(const Kernel &base, const Kernel &xformed)
{
    kisa::MemoryImage m1, m2;
    for (const auto &array : base.arrays) {
        fillArray(array, m1, 1234 + array.base);
        fillArray(array, m2, 1234 + array.base);
    }
    Evaluator e1(base, m1), e2(xformed, m2);
    e1.run();
    e2.run();
    EXPECT_EQ(checksumArrays(base, m1), checksumArrays(xformed, m2))
        << "base:\n" << base.toString() << "\nxformed:\n"
        << xformed.toString();
}

TEST(Substitute, ReplacesUsesOnly)
{
    Kernel k = sweepKernel();
    Stmt &outer = *k.body[0];
    const ExprPtr repl = add(varref("j"), iconst(2));
    substituteVar(outer, "j", *repl);
    const std::string s = outer.toString();
    EXPECT_NE(s.find("(j + 2)"), std::string::npos);
}

TEST(Legality, ParallelOuterAlwaysLegal)
{
    Kernel k = sweepKernel();
    k.body[0]->parallel = true;
    EXPECT_TRUE(canUnrollAndJam(*k.body[0]));
}

TEST(Legality, IndependentStencilLegal)
{
    // B written from A: no same-array write pairs => legal.
    Kernel k = sweepKernel();
    EXPECT_TRUE(canUnrollAndJam(*k.body[0]));
    EXPECT_TRUE(canInterchange(*k.body[0]));
}

TEST(Legality, TrueRecurrenceAcrossOuterIllegal)
{
    // A[j][i] = A[j-1][i+1]: dependence (1, -1) => (<, >) pattern.
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {16, 16});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(a, subs2(varref("j"), varref("i"))),
        aref(a, subs2(sub(varref("j"), iconst(1)),
                      add(varref("i"), iconst(1))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(15), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(1), iconst(16), std::move(ob)));
    EXPECT_FALSE(canUnrollAndJam(*k.body[0]));
    EXPECT_FALSE(canInterchange(*k.body[0]));
}

TEST(Legality, ForwardOnlyDependenceLegal)
{
    // A[j][i] = A[j-1][i]: direction (<, =) does not prevent jamming.
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {16, 16});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(a, subs2(varref("j"), varref("i"))),
        aref(a, subs2(sub(varref("j"), iconst(1)), varref("i")))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(16), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(1), iconst(16), std::move(ob)));
    EXPECT_TRUE(canUnrollAndJam(*k.body[0]));
}

TEST(UnrollAndJam, StructureEvenTrip)
{
    Kernel k = sweepKernel(24, 40);
    ASSERT_TRUE(unrollAndJam(k, *k.body[0], 4));
    // 24 divisible by 4: no postlude.
    EXPECT_EQ(k.body.size(), 1u);
    EXPECT_EQ(k.body[0]->step, 4);
    // Jammed inner loop has 4 copies of the statement.
    ASSERT_EQ(k.body[0]->body.size(), 1u);
    EXPECT_EQ(k.body[0]->body[0]->body.size(), 4u);
}

TEST(UnrollAndJam, SemanticsEvenTrip)
{
    Kernel base = sweepKernel(24, 40);
    Kernel x = base.clone();
    ASSERT_TRUE(unrollAndJam(x, *x.body[0], 4));
    expectEquivalent(base, x);
}

TEST(UnrollAndJam, SemanticsWithPostlude)
{
    Kernel base = sweepKernel(23, 40);  // 23 % 4 == 3 leftover rows
    Kernel x = base.clone();
    ASSERT_TRUE(unrollAndJam(x, *x.body[0], 4));
    EXPECT_EQ(x.body.size(), 2u);  // main + postlude
    expectEquivalent(base, x);
}

TEST(UnrollAndJam, PostludeInterchanged)
{
    Kernel base = sweepKernel(23, 40);
    Kernel x = base.clone();
    ASSERT_TRUE(unrollAndJam(x, *x.body[0], 4, true));
    // Postlude originally loops j over the 3 leftover rows with i
    // inside; interchanged it loops i outside.
    ASSERT_EQ(x.body.size(), 2u);
    EXPECT_EQ(x.body[1]->var, "i");
    expectEquivalent(base, x);
}

TEST(UnrollAndJam, RenamesBodyScalars)
{
    // Indirect-sum kernel: `ind` must be privatized per copy.
    Kernel k;
    Array *idx = k.addArray("idx", ScalType::I64, {16, 32});
    Array *data = k.addArray("data", ScalType::F64, {512});
    Array *out = k.addArray("out", ScalType::F64, {16});
    k.declareScalar("ind", ScalType::I64);
    std::vector<StmtPtr> ib;
    ib.push_back(assign(varref("ind"),
                        aref(idx, subs2(varref("j"), varref("i")))));
    ib.push_back(assign(aref(out, subs1(varref("j"))),
                        add(aref(out, subs1(varref("j"))),
                            aref(data, subs1(varref("ind"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(32), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(16), std::move(ob),
                             1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);
    // Initialize idx with valid indices.
    kisa::MemoryImage scratch;
    Kernel base = k.clone();

    ASSERT_TRUE(unrollAndJam(k, *k.body[0], 2));
    const std::string s = k.toString();
    EXPECT_NE(s.find("ind__1"), std::string::npos);

    // Semantics, with careful idx initialization (valid subscripts).
    kisa::MemoryImage m1, m2;
    Rng rng(99);
    for (std::int64_t e = 0; e < idx->numElems(); ++e) {
        const std::uint64_t v = rng.below(512);
        m1.st64(base.findArray("idx")->base + Addr(e) * 8, v);
        m2.st64(k.findArray("idx")->base + Addr(e) * 8, v);
    }
    for (std::int64_t e = 0; e < data->numElems(); ++e) {
        const double v = rng.uniform();
        m1.stF64(base.findArray("data")->base + Addr(e) * 8, v);
        m2.stF64(k.findArray("data")->base + Addr(e) * 8, v);
    }
    Evaluator e1(base, m1), e2(k, m2);
    e1.run();
    e2.run();
    EXPECT_EQ(checksumArrays(base, m1), checksumArrays(k, m2));
    (void)out;
}

TEST(UnrollAndJam, RefusesLiveInScalar)
{
    // s accumulates ACROSS outer iterations: renaming would break it.
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {8, 8});
    k.declareScalar("s", ScalType::F64);
    std::vector<StmtPtr> ib;
    ib.push_back(assign(varref("s"),
                        add(varref("s"),
                            aref(a, subs2(varref("j"), varref("i"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(8), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(8), std::move(ob)));
    EXPECT_FALSE(unrollAndJam(k, *k.body[0], 2));
}

TEST(UnrollAndJam, PointerChainsJamToWhile)
{
    // for j: for (p = heads[j]; p; p = p->next) total[j] += p->data
    Kernel k;
    Array *heads = k.addArray("heads", ScalType::I64, {8});
    Array *total = k.addArray("total", ScalType::F64, {8});
    k.declareScalar("p", ScalType::I64);
    std::vector<StmtPtr> pb;
    pb.push_back(assign(aref(total, subs1(varref("j"))),
                        add(aref(total, subs1(varref("j"))),
                            deref(varref("p"), 8, ScalType::F64))));
    std::vector<StmtPtr> ob;
    ob.push_back(ptrLoop("p", aref(heads, subs1(varref("j"))), 0,
                         std::move(pb)));
    k.body.push_back(forLoop("j", iconst(0), iconst(8), std::move(ob),
                             1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);
    Kernel base = k.clone();

    ASSERT_TRUE(unrollAndJam(k, *k.body[0], 2));
    // Jammed: a While over min(p, p__1) plus two PtrLoop epilogues.
    int whiles = 0, ptrloops = 0;
    walkStmts(*k.body[0], [&](const Stmt &s) {
        whiles += s.kind == Stmt::Kind::While;
        ptrloops += s.kind == Stmt::Kind::PtrLoop;
    });
    EXPECT_EQ(whiles, 1);
    EXPECT_EQ(ptrloops, 2);

    // Semantics with real chains of differing lengths.
    auto init = [&](kisa::MemoryImage &m, const Kernel &kk) {
        const Array *h = kk.findArray("heads");
        Rng rng(5);
        Addr node_base = 0x40000000;
        for (int j = 0; j < 8; ++j) {
            const int len = 1 + j % 5;
            Addr prev = 0;
            // Build the chain back-to-front.
            std::vector<Addr> nodes;
            for (int n = 0; n < len; ++n) {
                const Addr node = node_base;
                node_base += 64;
                nodes.push_back(node);
            }
            for (int n = len - 1; n >= 0; --n) {
                m.st64(nodes[n], prev);                    // next
                m.stF64(nodes[n] + 8, rng.uniform());      // data
                prev = nodes[n];
            }
            m.st64(h->base + Addr(j) * 8, prev);
        }
    };
    kisa::MemoryImage m1, m2;
    init(m1, base);
    init(m2, k);
    Evaluator e1(base, m1), e2(k, m2);
    e1.run();
    e2.run();
    EXPECT_EQ(checksumArrays(base, m1), checksumArrays(k, m2));
}

TEST(Interchange, SwapsAndPreservesSemantics)
{
    Kernel base = sweepKernel();
    Kernel x = base.clone();
    ASSERT_TRUE(interchange(x, *x.body[0]));
    EXPECT_EQ(x.body[0]->var, "i");
    EXPECT_EQ(x.body[0]->body[0]->var, "j");
    expectEquivalent(base, x);
}

TEST(StripMine, TilesAndPreservesSemantics)
{
    Kernel base = sweepKernel(24, 40);
    Kernel x = base.clone();
    // Strip-mine the inner i loop by 7 (non-dividing strip).
    ASSERT_TRUE(stripMine(x, *x.body[0]->body[0], 7));
    EXPECT_EQ(x.body[0]->body[0]->var, "i__tile");
    expectEquivalent(base, x);
}

TEST(StripMineAndInterchange, Figure2c)
{
    // Figure 2(c): strip-mine the OUTER loop, then interchange the
    // tile's inner pair so the strip runs column-wise.
    Kernel base = sweepKernel(32, 40);
    Kernel x = base.clone();
    ASSERT_TRUE(stripMine(x, *x.body[0], 4));
    // Now: j__tile { j { i { ... } } }; interchange j and i.
    ASSERT_TRUE(interchange(x, *x.body[0]->body[0]));
    EXPECT_EQ(x.body[0]->body[0]->var, "i");
    expectEquivalent(base, x);
}

TEST(InnerUnroll, UnrollsWithRemainder)
{
    Kernel base = sweepKernel(24, 41);  // 41 % 4 = 1 leftover column
    Kernel x = base.clone();
    Stmt *inner = x.body[0]->body[0].get();
    ASSERT_TRUE(innerUnroll(x, *inner, 4));
    // 4 copies plus remainder loop inside the outer body.
    EXPECT_EQ(inner->body.size(), 4u);
    EXPECT_EQ(x.body[0]->body.size(), 2u);
    expectEquivalent(base, x);
}

TEST(ScalarReplace, HoistsInvariantAccumulator)
{
    // out[j] += data[j][i]: out[j] is inner-invariant read+write.
    Kernel k;
    Array *data = k.addArray("data", ScalType::F64, {8, 64});
    Array *out = k.addArray("out", ScalType::F64, {8});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(out, subs1(varref("j"))),
                        add(aref(out, subs1(varref("j"))),
                            aref(data, subs2(varref("j"), varref("i"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(8), std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);
    Kernel base = k.clone();

    auto nests = analysis::findLoopNests(k);
    const int replaced = scalarReplace(k, *nests[0].inner());
    EXPECT_EQ(replaced, 2);
    // The inner body no longer references `out`.
    bool out_in_inner = false;
    walkExprs(*nests[0].inner(), [&](const Expr &e) {
        if (e.kind == Expr::Kind::ArrayRef && e.array == k.findArray("out"))
            out_in_inner = true;
    });
    EXPECT_FALSE(out_in_inner);
    expectEquivalent(base, k);
    (void)data;
}

TEST(Driver, Fig2aChoosesLpDegree)
{
    // The Section 3.2.2 walkthrough on the exact Figure 2(a) loop
    // (in-place update, a single leading reference): alpha = 1, f = 1,
    // so the driver must unroll-and-jam by lp to reach f = lp.
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {64, 64});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(a, subs2(varref("j"), varref("i"))),
                        add(aref(a, subs2(varref("j"), varref("i"))),
                            fconst(1.0))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(64), std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);

    DriverParams params;
    params.lp = 10;
    params.maxUnroll = 16;
    params.enableInnerUnroll = false;
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 10);
    EXPECT_NEAR(report.nests[0].fAfter, 10.0, 0.01);
    EXPECT_DOUBLE_EQ(report.nests[0].alpha, 1.0);
}

TEST(Driver, TwoLeadingRefsHalveTheDegree)
{
    // sweepKernel has two leading references (A read, B write): the
    // driver reaches f = lp with half the unroll degree.
    Kernel k = sweepKernel(64, 64);
    DriverParams params;
    params.lp = 10;
    params.maxUnroll = 16;
    params.enableInnerUnroll = false;
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 5);
    EXPECT_NEAR(report.nests[0].fAfter, 10.0, 0.01);
}

TEST(Driver, RespectsMaxUnroll)
{
    Kernel k = sweepKernel(64, 64);
    DriverParams params;
    params.lp = 10;
    params.maxUnroll = 4;
    params.enableInnerUnroll = false;
    auto report = applyClustering(k, params);
    EXPECT_EQ(report.nests[0].unrollDegree, 4);
}

TEST(Driver, TransformedKernelIsEquivalent)
{
    Kernel base = sweepKernel(61, 53);  // awkward trip counts
    Kernel x = base.clone();
    DriverParams params;
    params.lp = 10;
    auto report = applyClustering(x, params);
    EXPECT_GT(report.nests[0].unrollDegree, 1);
    expectEquivalent(base, x);
}

TEST(Driver, SkipsSatisfiedLoop)
{
    // A gather over 10+ distinct arrays already has f >= lp.
    Kernel k;
    std::vector<Array *> arrays;
    for (int a = 0; a < 12; ++a)
        arrays.push_back(k.addArray("A" + std::to_string(a),
                                    ScalType::F64, {16, 64}));
    Array *out = k.addArray("out", ScalType::F64, {16, 64});
    std::vector<StmtPtr> ib;
    ExprPtr sum = aref(arrays[0], subs2(varref("j"), varref("i")));
    for (int a = 1; a < 12; ++a)
        sum = add(std::move(sum),
                  aref(arrays[static_cast<size_t>(a)],
                       subs2(varref("j"), varref("i"))));
    ib.push_back(assign(aref(out, subs2(varref("j"), varref("i"))),
                        std::move(sum)));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(16), std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);
    DriverParams params;
    params.lp = 10;
    params.bodySize = [](const ir::Kernel &, const ir::Stmt &) { return 8; };
    auto report = applyClustering(k, params);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
}

TEST(Driver, NoOpWhenModeledFDoesNotImprove)
{
    // A parallel outer loop whose index appears in no subscript (the
    // time-loop shape): jamming it is legal, but the copies access the
    // same lines, so f(u) == f(1) and the driver must refuse the jam
    // (DESIGN.md section 5: never transform without a modeled f rise).
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {64});
    Array *b = k.addArray("B", ScalType::F64, {64});
    Array *c = k.addArray("C", ScalType::F64, {64});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(c, subs1(varref("i"))),
                        add(aref(a, subs1(varref("i"))),
                            aref(b, subs1(varref("i"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("t", iconst(0), iconst(16), std::move(ob),
                             1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);

    DriverParams params;
    params.lp = 10;
    params.enableInnerUnroll = false;
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
    EXPECT_NEAR(report.nests[0].fAfter, report.nests[0].fBefore, 0.01);
}

TEST(Driver, RealizedMissGateRefusesUnderRealizedJam)
{
    // Run-matched profile says every leading stream mostly hits (the
    // post-partitioning FFT butterfly situation): the modeled f rise is
    // not realizable and the jam enables no register reuse — refuse.
    Kernel k = sweepKernel(64, 64);
    DriverParams params;
    params.lp = 10;
    params.enableInnerUnroll = false;
    params.realizedMissRate = [](int) { return 0.001; };
    params.realizedAccesses = [](int) { return std::uint64_t(4096); };
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
    EXPECT_NE(report.nests[0].note.find("refused"), std::string::npos);
}

TEST(Driver, RealizedMissGateKeepsRealizedJam)
{
    // Same kernel, but the profile confirms the static estimate (one
    // miss per L_m = 8 iterations): the jam proceeds as normal.
    Kernel k = sweepKernel(64, 64);
    DriverParams params;
    params.lp = 10;
    params.enableInnerUnroll = false;
    params.realizedMissRate = [](int) { return 0.125; };
    params.realizedAccesses = [](int) { return std::uint64_t(4096); };
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 5);
}

TEST(Driver, RealizedMissGateKeepsJamWithOneLiveStream)
{
    // One stream still missing at its modeled rate is enough to keep
    // the jam (the ocean/erlebacher shape: a temporally-reused row
    // drags the aggregate down, but the new-data stream still gains
    // overlapped misses from its copies).
    Kernel k = sweepKernel(64, 64);
    DriverParams params;
    params.lp = 10;
    params.enableInnerUnroll = false;
    params.realizedMissRate = [](int ref_id) {
        return ref_id == 0 ? 0.125 : 0.001;
    };
    params.realizedAccesses = [](int) { return std::uint64_t(4096); };
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 5);
}

TEST(Driver, RealizedMissGateKeepsJamEnablingScalarReuse)
{
    // Even with every stream under-realized, a jam that enables
    // cross-iteration register reuse is kept (the LU shape: the jam's
    // payoff is scalar replacement, not clustered misses).
    Kernel k;
    Array *a = k.addArray("A", ScalType::F64, {64, 64});
    Array *b = k.addArray("B", ScalType::F64, {64, 64});
    Array *c = k.addArray("C", ScalType::F64, {64});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(b, subs2(varref("j"), varref("i"))),
        mul(aref(a, subs2(varref("j"), varref("i"))),
            aref(c, subs1(varref("j"))))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(64), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(64),
                             std::move(ob)));
    assignRefIds(k);
    layoutArrays(k);

    DriverParams params;
    params.lp = 10;
    params.enableInnerUnroll = false;
    params.realizedMissRate = [](int) { return 0.001; };
    params.realizedAccesses = [](int) { return std::uint64_t(4096); };
    auto report = applyClustering(k, params);
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_GT(report.nests[0].unrollDegree, 1);
    EXPECT_GT(report.nests[0].scalarsReplaced, 0);
}


// ---------------------------------------------------------------------
// Loop fusion (the Section 6 extension).
// ---------------------------------------------------------------------

/** Two adjacent single-level sweeps over distinct arrays. */
Kernel
twinSweeps(std::int64_t n = 40, std::int64_t shift = 0)
{
    Kernel k;
    k.name = "twin";
    Array *a = k.addArray("A", ScalType::F64, {n + 4});
    Array *b = k.addArray("B", ScalType::F64, {n + 4});
    Array *c = k.addArray("C", ScalType::F64, {n + 4});
    std::vector<StmtPtr> b1;
    b1.push_back(assign(aref(b, subs1(varref("i"))),
                        mul(aref(a, subs1(varref("i"))), fconst(2.0))));
    k.body.push_back(forLoop("i", iconst(0), iconst(n), std::move(b1)));
    std::vector<StmtPtr> b2;
    b2.push_back(assign(
        aref(c, subs1(varref("i2"))),
        add(aref(b, subs1(add(varref("i2"), iconst(shift)))),
            fconst(1.0))));
    k.body.push_back(forLoop("i2", iconst(0), iconst(n),
                             std::move(b2)));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

TEST(Fusion, FusesIndependentSweeps)
{
    Kernel base = twinSweeps();
    Kernel x = base.clone();
    ASSERT_TRUE(fuseLoops(x, *x.body[0], *x.body[1]));
    EXPECT_EQ(x.body.size(), 1u);
    EXPECT_EQ(x.body[0]->body.size(), 2u);
    expectEquivalent(base, x);
}

TEST(Fusion, BackwardDependenceLegal)
{
    // Second loop reads B[i - 1]: the producer ran at an earlier fused
    // iteration, so fusion is legal.
    Kernel base = twinSweeps(40, -1);
    // Keep subscripts in bounds: start the consumer at 1.
    base.body[1]->lo = iconst(1);
    Kernel x = base.clone();
    // Trip counts differ now (0..40 vs 1..40): fusion must refuse.
    EXPECT_FALSE(fuseLoops(x, *x.body[0], *x.body[1]));
}

TEST(Fusion, ForwardDependenceIllegal)
{
    // Second loop reads B[i + 1], which the first loop has not written
    // yet at fused iteration i: must refuse.
    Kernel base = twinSweeps(40, 1);
    Kernel x = base.clone();
    EXPECT_FALSE(fuseLoops(x, *x.body[0], *x.body[1]));
}

TEST(Fusion, ZeroShiftDependenceLegal)
{
    // Second loop reads B[i] written by the first at the same fused
    // iteration (delta 0): legal, and semantics preserved.
    Kernel base = twinSweeps(40, 0);
    Kernel x = base.clone();
    ASSERT_TRUE(fuseLoops(x, *x.body[0], *x.body[1]));
    expectEquivalent(base, x);
}

TEST(Fusion, RefusesDifferentSteps)
{
    Kernel base = twinSweeps();
    Kernel x = base.clone();
    x.body[1]->step = 2;
    x.body[1]->hi = iconst(40);
    EXPECT_FALSE(fuseLoops(x, *x.body[0], *x.body[1]));
}

TEST(Fusion, RefusesMismatchedHeaders)
{
    // Same step, but the trip counts differ (0..40 vs 0..39): the
    // fused loop would drop the first loop's last iteration.
    Kernel base = twinSweeps();
    Kernel x = base.clone();
    x.body[1]->hi = iconst(39);
    EXPECT_FALSE(fuseLoops(x, *x.body[0], *x.body[1]));
}

TEST(Fusion, RefusesWriteAfterReadPositiveDelta)
{
    // First loop reads B[i], second loop writes B[i + 1]. Originally
    // every read sees the old value; fused, iteration i overwrites
    // B[i + 1] before iteration i + 1 reads it: must refuse.
    Kernel k;
    k.name = "war";
    Array *a = k.addArray("A", ScalType::F64, {44});
    Array *b = k.addArray("B", ScalType::F64, {44});
    std::vector<StmtPtr> b1;
    b1.push_back(assign(aref(a, subs1(varref("i"))),
                        aref(b, subs1(varref("i")))));
    k.body.push_back(forLoop("i", iconst(0), iconst(40),
                             std::move(b1)));
    std::vector<StmtPtr> b2;
    b2.push_back(assign(
        aref(b, subs1(add(varref("i2"), iconst(1)))), fconst(3.0)));
    k.body.push_back(forLoop("i2", iconst(0), iconst(40),
                             std::move(b2)));
    assignRefIds(k);
    layoutArrays(k);
    EXPECT_FALSE(fuseLoops(k, *k.body[0], *k.body[1]));
}

TEST(Fusion, RefusesUnanalyzableSubscripts)
{
    // The second loop reads B through an index array: no linear form,
    // so the dependence test cannot bound the distance: must refuse.
    Kernel k;
    k.name = "indirect";
    Array *b = k.addArray("B", ScalType::F64, {44});
    Array *c = k.addArray("C", ScalType::F64, {44});
    Array *idx = k.addArray("IDX", ScalType::I64, {44});
    std::vector<StmtPtr> b1;
    b1.push_back(assign(aref(b, subs1(varref("i"))), fconst(2.0)));
    k.body.push_back(forLoop("i", iconst(0), iconst(40),
                             std::move(b1)));
    std::vector<StmtPtr> b2;
    b2.push_back(assign(
        aref(c, subs1(varref("i2"))),
        aref(b, subs1(aref(idx, subs1(varref("i2")))))));
    k.body.push_back(forLoop("i2", iconst(0), iconst(40),
                             std::move(b2)));
    assignRefIds(k);
    layoutArrays(k);
    EXPECT_FALSE(fuseLoops(k, *k.body[0], *k.body[1]));
}

TEST(Fusion, DriverFusesUnnestedLoops)
{
    // Section 6: no outer loop to unroll-and-jam, but a fusable
    // sibling doubles the leading references per iteration.
    Kernel k = twinSweeps(64);
    DriverParams params;
    params.lp = 10;
    auto report = applyClustering(k, params);
    ASSERT_GE(report.nests.size(), 1u);
    EXPECT_GE(report.nests[0].fusedLoops, 1);
    EXPECT_GT(report.nests[0].fAfter, report.nests[0].fBefore);
    // Only the fused loop remains at top level.
    int top_loops = 0;
    for (const auto &stmt : k.body)
        top_loops += stmt->kind == Stmt::Kind::Loop;
    EXPECT_EQ(top_loops, 1);
}

TEST(Fusion, DriverFusedKernelEquivalent)
{
    Kernel base = twinSweeps(53);
    Kernel x = base.clone();
    DriverParams params;
    params.lp = 10;
    applyClustering(x, params);
    expectEquivalent(base, x);
}


// ---------------------------------------------------------------------
// Software prefetching (the Section 1 comparison technique).
// ---------------------------------------------------------------------

TEST(Prefetch, InsertsPerStreamAndPreservesSemantics)
{
    Kernel base = sweepKernel(24, 40);
    Kernel x = base.clone();
    const int inserted = insertPrefetches(x, 4, 64);
    // Two streams (A read, B write), one prefetch each after the
    // unroll-by-L rewrite.
    EXPECT_GE(inserted, 2);
    const std::string s = x.toString();
    EXPECT_NE(s.find("prefetch"), std::string::npos);
    expectEquivalent(base, x);
}

TEST(Prefetch, UnrollsUnitStrideByLineFactor)
{
    Kernel x = sweepKernel(24, 40);
    insertPrefetches(x, 4, 64);
    // The inner loop now steps by L = 8 (64-byte lines, 8-byte elems).
    auto nests = analysis::findLoopNests(x);
    bool stepped = false;
    for (const auto &nest : nests)
        stepped |= nest.inner()->step == 8;
    EXPECT_TRUE(stepped);
}

TEST(Prefetch, ComposesWithClustering)
{
    Kernel base = sweepKernel(24, 40);
    Kernel x = base.clone();
    DriverParams params;
    params.lp = 10;
    applyClustering(x, params);
    insertPrefetches(x, 4, 64);
    expectEquivalent(base, x);
}


// ---------------------------------------------------------------------
// Downward (negative-step) loops.
// ---------------------------------------------------------------------

/** Backward sweep: B[j][i] = A[j][i] + A[j][i+1], i descending. */
Kernel
backwardSweep(std::int64_t rows = 12, std::int64_t cols = 30)
{
    Kernel k;
    k.name = "backward";
    Array *a = k.addArray("A", ScalType::F64, {rows, cols + 2});
    Array *b = k.addArray("B", ScalType::F64, {rows, cols + 2});
    std::vector<StmtPtr> ib;
    ib.push_back(assign(
        aref(b, subs2(varref("j"), varref("i"))),
        add(aref(a, subs2(varref("j"), varref("i"))),
            aref(a, subs2(varref("j"), add(varref("i"), iconst(1)))))));
    std::vector<StmtPtr> ob;
    // for (i = cols - 1; i > -1; i -= 1)
    ob.push_back(forLoop("i", iconst(cols - 1), iconst(-1),
                         std::move(ib), -1));
    k.body.push_back(forLoop("j", iconst(0), iconst(rows),
                             std::move(ob), 1, true));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

TEST(Downward, TripCountMatchesSemantics)
{
    // A descending sweep touches every interior element exactly once.
    Kernel k = backwardSweep(4, 10);
    kisa::MemoryImage mem;
    for (const auto &array : k.arrays)
        fillArray(array, mem, 11 + array.base);
    Evaluator ev(k, mem);
    ev.run();
    // 4 rows x 10 descending iterations of a 3-stmt-expansion body.
    EXPECT_GT(ev.stmtCount(), 4u * 10u);
}

TEST(Downward, UnrollAndJamOverOuter)
{
    Kernel base = backwardSweep(13, 30);  // 13 % 4 leftover rows
    Kernel x = base.clone();
    ASSERT_TRUE(unrollAndJam(x, *x.body[0], 4));
    expectEquivalent(base, x);
}

TEST(Downward, InnerUnrollOfDescendingLoop)
{
    Kernel base = backwardSweep(8, 29);   // 29 % 4 leftover columns
    Kernel x = base.clone();
    auto nests = analysis::findLoopNests(x);
    ASSERT_TRUE(innerUnroll(x, *nests[0].inner(), 4));
    expectEquivalent(base, x);
}

TEST(Downward, NegativeStrideLocalityAnalysis)
{
    // Descending unit-stride access is still self-spatial; the leader
    // is the highest-constant member (first touched going down).
    Kernel k = backwardSweep();
    auto nests = analysis::findLoopNests(k);
    analysis::AnalysisParams params;
    auto la = analysis::analyzeInnerLoop(k, nests[0], params);
    int leaders = 0;
    for (const auto &r : la.refs) {
        if (!r.leading)
            continue;
        ++leaders;
        EXPECT_EQ(r.strideBytes, -8);
        EXPECT_EQ(r.lm, 8);
    }
    EXPECT_EQ(leaders, 2);  // the A group leader and the B write
    EXPECT_TRUE(la.hasCacheLineRecurrence);
}


// ---------------------------------------------------------------------
// Multi-level unroll-and-jam (deeper nests).
// ---------------------------------------------------------------------

/** 3-level nest whose middle loop carries a jam-preventing dependence:
 *  A[k][j][i] = A[k][j-1][i+1] + B[k][j][i]; slabs (k) independent. */
Kernel
slabKernel(std::int64_t slabs = 6, std::int64_t rows = 10,
           std::int64_t cols = 24)
{
    Kernel k;
    k.name = "slabs";
    Array *a = k.addArray("A", ScalType::F64, {slabs, rows, cols + 2});
    Array *b = k.addArray("B", ScalType::F64, {slabs, rows, cols + 2});
    std::vector<ExprPtr> w, r1, r2;
    w.push_back(varref("k"));
    w.push_back(varref("j"));
    w.push_back(varref("i"));
    r1.push_back(varref("k"));
    r1.push_back(sub(varref("j"), iconst(1)));
    r1.push_back(add(varref("i"), iconst(1)));
    r2.push_back(varref("k"));
    r2.push_back(varref("j"));
    r2.push_back(varref("i"));
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(a, std::move(w)),
                        add(aref(a, std::move(r1)),
                            aref(b, std::move(r2)))));
    std::vector<StmtPtr> jb;
    jb.push_back(forLoop("i", iconst(0), iconst(cols), std::move(ib)));
    auto jloop = forLoop("j", iconst(1), iconst(rows), std::move(jb));
    std::vector<StmtPtr> kb;
    kb.push_back(std::move(jloop));
    k.body.push_back(forLoop("k", iconst(0), iconst(slabs),
                             std::move(kb), 1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

TEST(MultiLevel, MiddleLoopIsIllegalToJam)
{
    Kernel k = slabKernel();
    auto nests = analysis::findLoopNests(k);
    ASSERT_EQ(nests[0].depth(), 3);
    EXPECT_FALSE(canUnrollAndJam(*nests[0].outer(1)));   // j loop
    EXPECT_TRUE(canUnrollAndJam(*nests[0].outer(2)));    // k loop
}

TEST(MultiLevel, OuterJamFusesThroughTheMiddle)
{
    Kernel base = slabKernel();
    Kernel x = base.clone();
    auto nests = analysis::findLoopNests(x);
    ASSERT_TRUE(unrollAndJam(x, *nests[0].outer(2), 3));
    // The jammed k loop must contain ONE j loop (copies fused), whose
    // body holds one fused i loop with 3 statement copies.
    auto new_nests = analysis::findLoopNests(x);
    ASSERT_GE(new_nests.size(), 1u);
    EXPECT_EQ(new_nests[0].depth(), 3);
    EXPECT_EQ(new_nests[0].inner()->body.size(), 3u);
    expectEquivalent(base, x);
}

TEST(MultiLevel, DriverEscalatesToGrandparent)
{
    Kernel k = slabKernel(8, 10, 24);
    DriverParams params;
    params.lp = 10;
    params.maxUnroll = 8;
    auto report = applyClustering(k, params);
    ASSERT_GE(report.nests.size(), 1u);
    EXPECT_GT(report.nests[0].unrollDegree, 1);
    EXPECT_NE(report.nests[0].note.find("2 levels"),
              std::string::npos)
        << report.toString();
}

TEST(MultiLevel, DriverResultEquivalent)
{
    Kernel base = slabKernel(7, 9, 23);
    Kernel x = base.clone();
    DriverParams params;
    params.lp = 10;
    applyClustering(x, params);
    expectEquivalent(base, x);
}

} // namespace
} // namespace mpc::transform
