/**
 * @file
 * Unit tests for the out-of-order core, exercised through a
 * single-node System (Table 1 base configuration unless noted).
 * These tests pin down the behaviours the paper's mechanism depends
 * on: nonblocking loads, in-order retire stalls on read misses,
 * window-bounded miss overlap, and stall-time attribution.
 */

#include <gtest/gtest.h>

#include "kisa/program.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;
using kisa::Reg;

sys::RunResult
runUni(Program p, kisa::MemoryImage &image,
       sys::SystemConfig cfg = sys::baseConfig())
{
    std::vector<Program> programs;
    programs.push_back(std::move(p));
    sys::System system(cfg, std::move(programs), image);
    return system.run(Tick(1) << 30);
}

TEST(Core, ArithmeticResultAndCompletion)
{
    AsmBuilder b("arith");
    b.iLoadImm(1, 20);
    b.iLoadImm(2, 22);
    b.iAdd(3, 1, 2);
    b.halt();
    kisa::MemoryImage image;
    std::vector<Program> programs;
    programs.push_back(b.finish());
    sys::System system(sys::baseConfig(), std::move(programs), image);
    auto res = system.run();
    EXPECT_EQ(system.core(0).regs().intRegs[3], 42);
    EXPECT_EQ(res.instructions, 4u);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_LT(res.cycles, 50u);
}

TEST(Core, MatchesInterpreterOnLoopKernel)
{
    // sum of i*i for i in [0,100) via memory round trips.
    auto build = [] {
        AsmBuilder b("kernel");
        const Reg r_i = 1, r_n = 2, r_sum = 3, r_t = 4, r_base = 5;
        b.iLoadImm(r_i, 0);
        b.iLoadImm(r_n, 100);
        b.iLoadImm(r_sum, 0);
        b.iLoadImm(r_base, 0x10000);
        auto loop = b.newLabel();
        b.bind(loop);
        b.iMul(r_t, r_i, r_i);
        b.stI(r_base, 0, r_t);
        b.ldI(r_t, r_base, 0);
        b.iAdd(r_sum, r_sum, r_t);
        b.iAddImm(r_i, r_i, 1);
        b.bLt(r_i, r_n, loop);
        b.halt();
        return b.finish();
    };

    kisa::MemoryImage mem_timing, mem_func;
    Program p1 = build(), p2 = build();
    kisa::Interpreter interp(mem_func);
    interp.addCore(p2);
    interp.run();

    std::vector<Program> programs;
    programs.push_back(std::move(p1));
    sys::System system(sys::baseConfig(), std::move(programs),
                       mem_timing);
    system.run();

    EXPECT_EQ(system.core(0).regs().intRegs[3],
              interp.regs(0).intRegs[3]);
    EXPECT_EQ(mem_timing.ld64(0x10000), mem_func.ld64(0x10000));
}

TEST(Core, LoadMissStallsRetire)
{
    // A single cold load: execution time must include the full memory
    // latency, attributed to data-read stall.
    AsmBuilder b("one-miss");
    b.iLoadImm(1, 0x100000);
    b.ldF(2, 1, 0);
    b.fAdd(3, 2, 2);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    EXPECT_GT(res.cycles, 60u);            // ~full memory latency
    EXPECT_GT(res.dataReadCycles, 40.0);   // attributed to reads
}

TEST(Core, IndependentMissesOverlap)
{
    // Eight independent loads to distinct lines: nonblocking caches
    // must overlap them, so total time is far below 8x the latency.
    AsmBuilder b("clustered");
    b.iLoadImm(1, 0x100000);
    for (int i = 0; i < 8; ++i)
        b.ldF(static_cast<Reg>(10 + i), 1, i * 4096);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    // Serialized would be ~8 * 85 = 680 cycles.
    EXPECT_LT(res.cycles, 400u);
    EXPECT_GT(res.cycles, 80u);
}

TEST(Core, DependentMissesSerialize)
{
    // Pointer-chase: each load's address depends on the previous load.
    kisa::MemoryImage image;
    const int chain = 8;
    Addr nodes[chain];
    for (int i = 0; i < chain; ++i)
        nodes[i] = 0x100000 + static_cast<Addr>(i) * 8192;
    for (int i = 0; i + 1 < chain; ++i)
        image.st64(nodes[i], nodes[i + 1]);

    AsmBuilder b("chase");
    b.iLoadImm(1, static_cast<std::int64_t>(nodes[0]));
    for (int i = 0; i + 1 < chain; ++i)
        b.ldI(1, 1, 0);
    b.halt();
    auto res = runUni(b.finish(), image);
    // Must pay ~(chain-1) serialized miss latencies.
    EXPECT_GT(res.cycles, static_cast<Tick>((chain - 1) * 60));
}

TEST(Core, WindowLimitsMissOverlap)
{
    // Misses separated by more than a window of filler must not
    // overlap: the paper's window constraint. Compare against the
    // clustered version of the same work.
    auto build = [](bool spread) {
        AsmBuilder b(spread ? "spread" : "packed");
        b.iLoadImm(1, 0x100000);
        const int misses = 6;
        // Independent single-cycle filler (rotating destinations), so
        // only window occupancy separates the two variants.
        auto filler = [&b](int count) {
            for (int k = 0; k < count; ++k)
                b.iAddImm(static_cast<Reg>(100 + (k % 32)), 0, k);
        };
        for (int m = 0; m < misses; ++m) {
            b.ldF(static_cast<Reg>(10 + m), 1, m * 4096);
            if (spread)
                filler(70);  // > one 64-entry window between misses
        }
        if (!spread)
            filler(6 * 70);
        b.halt();
        return b.finish();
    };

    kisa::MemoryImage im1, im2;
    auto spread = runUni(build(true), im1);
    auto packed = runUni(build(false), im2);
    // Same instruction mix, but packed misses overlap: each spread miss
    // pays a full serialized latency.
    EXPECT_LT(static_cast<double>(packed.cycles),
              0.75 * static_cast<double>(spread.cycles));
}

TEST(Core, MshrLimitCapsOverlap)
{
    // 20 independent misses with 10 MSHRs: at most 10 overlap.
    AsmBuilder b("many");
    b.iLoadImm(1, 0x100000);
    for (int i = 0; i < 20; ++i)
        b.ldF(static_cast<Reg>(8 + i), 1, i * 4096);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    auto cfg1 = sys::baseConfig();
    cfg1.hier.l1.numMshrs = 2;
    cfg1.hier.l2.numMshrs = 2;
    AsmBuilder b2("many2");
    b2.iLoadImm(1, 0x100000);
    for (int i = 0; i < 20; ++i)
        b2.ldF(static_cast<Reg>(8 + i), 1, i * 4096);
    b2.halt();
    kisa::MemoryImage image2;
    auto res2 = runUni(b2.finish(), image2, cfg1);
    EXPECT_LT(res.cycles, res2.cycles);  // more MSHRs, more overlap
}

TEST(Core, FpLatenciesRespected)
{
    // Chain of 10 dependent FP sqrt ops: >= 10 * 33 cycles.
    AsmBuilder b("sqrt-chain");
    b.fLoadImm(1, 2.0);
    for (int i = 0; i < 10; ++i)
        b.fSqrt(1, 1);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    EXPECT_GE(res.cycles, 330u);
    EXPECT_LT(res.cycles, 420u);
}

TEST(Core, IssueWidthBoundsIpc)
{
    // 400 independent 1-cycle ALU ops on a 4-wide machine: >= 100 cycles
    // (2 ALUs actually bound it at 200).
    AsmBuilder b("alu");
    for (int i = 0; i < 400; ++i)
        b.iAddImm(static_cast<Reg>(1 + (i % 100)), 0, i);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    EXPECT_GE(res.cycles, 200u);
    EXPECT_LT(res.cycles, 280u);
    // 400 retired in ~200 cycles on a 4-wide retire = ~100 busy cycles;
    // the rest is FU (CPU) stall, not memory stall.
    EXPECT_NEAR(res.busyCycles, 100.0, 10.0);
    EXPECT_GT(res.cpuCycles, 80.0);
    EXPECT_LT(res.dataReadCycles, 5.0);
}

TEST(Core, BranchMispredictCostsCycles)
{
    // Data-dependent unpredictable branches (alternating pattern is
    // learned by 2-bit counters; use period-3 pattern).
    AsmBuilder b("branchy");
    const Reg r_i = 1, r_n = 2, r_m = 3, r_t = 4, r_three = 5, r_sum = 6;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, 300);
    b.iLoadImm(r_three, 3);
    b.iLoadImm(r_sum, 0);
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    b.iRem(r_m, r_i, r_three);
    b.iLoadImm(r_t, 0);
    b.bNe(r_m, r_t, skip);
    b.iAddImm(r_sum, r_sum, 1);
    b.bind(skip);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    EXPECT_GT(res.cores[0].mispredicts, 50u);
}

TEST(Core, StoresRetireViaWriteBuffer)
{
    // A burst of stores must not stall retirement the way loads do.
    AsmBuilder b("stores");
    b.iLoadImm(1, 0x200000);
    b.fLoadImm(2, 1.5);
    for (int i = 0; i < 16; ++i)
        b.stF(1, i * 4096, 2);
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    // 16 cold store misses at ~85 cycles each would be ~1360 serialized;
    // write buffering must hide nearly all of it.
    EXPECT_LT(res.cycles, 700u);
    // And the values must land in memory.
    EXPECT_DOUBLE_EQ(image.ldF64(0x200000 + 5 * 4096), 1.5);
}



TEST(Core, MemQueueLimitsInFlight)
{
    // 64 independent cold loads with a memory queue of 4: dispatch
    // throttles, so far fewer misses overlap than with the default 32.
    auto make = [] {
        AsmBuilder b("memq");
        b.iLoadImm(1, 0x100000);
        for (int i = 0; i < 64; ++i)
            b.ldF(static_cast<Reg>(10 + i % 64), 1, i * 4096);
        b.halt();
        return b.finish();
    };
    kisa::MemoryImage im1, im2;
    auto small_cfg = sys::baseConfig();
    small_cfg.core.memQueueSize = 2;
    const auto wide = runUni(make(), im1);
    const auto narrow = runUni(make(), im2, small_cfg);
    // With 2 slots at most 2 misses overlap; with 32 the run is
    // bandwidth-bound instead. (Both are far below 64 serialized
    // misses.)
    EXPECT_GT(narrow.cycles, wide.cycles + wide.cycles / 4);
    EXPECT_LT(wide.cycles, 64u * 85u);
}

TEST(Core, WindowOccupancyBounded)
{
    // While a long miss blocks retirement, the window fills but never
    // exceeds its configured size.
    AsmBuilder b("occ");
    b.iLoadImm(1, 0x100000);
    b.ldF(2, 1, 0);
    for (int i = 0; i < 300; ++i)
        b.iAddImm(static_cast<Reg>(10 + i % 16), 0, i);
    b.halt();
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(b.finish());
    sys::System system(sys::baseConfig(), std::move(ps), image);
    // Step manually to observe occupancy mid-run.
    int max_occ = 0;
    // (Run to completion; occupancy peaks are internal, so check the
    // accessor at the end and rely on the assertion-free run.)
    auto res = system.run();
    max_occ = system.core(0).windowOccupancy();
    EXPECT_EQ(max_occ, 0);          // drained at completion
    EXPECT_GT(res.cycles, 85u);     // the miss was on the path
}

TEST(Core, FlagWaitAttributedToSyncNotData)
{
    // A consumer spinning on a flag accumulates sync slots, and its
    // data-read stall stays small.
    std::vector<Program> ps;
    {
        AsmBuilder b("producer");
        b.fLoadImm(1, 1.5);
        // More dependent work than one window holds, so the flag
        // store's DISPATCH (where it takes effect functionally) is
        // delayed, not just its retirement.
        for (int i = 0; i < 120; ++i)
            b.fSqrt(1, 1);
        b.iLoadImm(2, 0x500000);
        b.iLoadImm(3, 1);
        b.stI(2, 0, 3);
        b.halt();
        ps.push_back(b.finish());
    }
    {
        AsmBuilder b("consumer");
        b.iLoadImm(2, 0x500000);
        b.iLoadImm(3, 1);
        b.flagWait(2, 0, 3);
        b.halt();
        ps.push_back(b.finish());
    }
    kisa::MemoryImage image;
    sys::System system(sys::baseConfig(), std::move(ps), image);
    auto r = system.run();
    const double sync1 = static_cast<double>(r.cores[1].syncSlots) / 4;
    const double data1 =
        static_cast<double>(r.cores[1].dataReadSlots) / 4;
    EXPECT_GT(sync1, 500.0);
    EXPECT_LT(data1, 50.0);
}

TEST(Core, PrefetchNeverBlocksRetire)
{
    // A prefetch to a cold line followed by cheap work: retirement
    // must not wait the full memory latency (nonbinding), but the line
    // must be resident afterwards for the demand load.
    AsmBuilder b("pf");
    b.iLoadImm(1, 0x700000);
    {
        kisa::Instr pf;
        pf.op = kisa::Op::Prefetch;
        pf.ra = 1;
        pf.imm = 0;
        b.emit(pf);
    }
    for (int i = 0; i < 40; ++i)
        b.iAddImm(static_cast<Reg>(10 + i % 8), 0, i);
    b.ldF(2, 1, 0);   // demand load: should hit the prefetched line
    b.halt();
    kisa::MemoryImage image;
    auto res = runUni(b.finish(), image);
    // 40 ALU ops at 2/cycle overlap most of the ~85-cycle prefetch;
    // total far below serialized prefetch + load.
    EXPECT_LT(res.cycles, 130u);
    EXPECT_LT(res.dataReadCycles, 75.0);
}

} // namespace
} // namespace mpc
