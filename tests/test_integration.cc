/**
 * @file
 * End-to-end integration tests: the full pipeline (profile ->
 * clustering driver -> codegen -> cycle simulation) must reproduce the
 * paper's qualitative results at test scale — per-application speedup
 * bands, read-stall reductions, preserved locality (miss counts), and
 * improved MSHR occupancy.
 */

#include <gtest/gtest.h>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

workloads::SizeParams
tiny()
{
    workloads::SizeParams size;
    size.scale = 1;
    return size;
}

PairResult
uniPair(const char *name)
{
    const auto w = workloads::makeByName(name, tiny());
    return runPair(w, sys::baseConfig(), 1);
}

struct Band
{
    const char *name;
    double minPct;  ///< conservative lower bound at test scale
};

class UniSpeedups : public ::testing::TestWithParam<Band>
{};

TEST_P(UniSpeedups, ClusteringReducesExecutionTime)
{
    const Band band = GetParam();
    const PairResult pair = uniPair(band.name);
    EXPECT_GE(pair.reductionPct(), band.minPct)
        << band.name << ": base=" << pair.base.result.cycles
        << " clust=" << pair.clust.result.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Apps, UniSpeedups,
    ::testing::Values(Band{"latbench", 50.0}, Band{"em3d", 30.0},
                      Band{"erlebacher", 12.0}, Band{"fft", 1.0},
                      Band{"lu", 8.0}, Band{"mp3d", 4.0},
                      Band{"mst", 20.0}, Band{"ocean", 7.0}),
    [](const ::testing::TestParamInfo<Band> &info) {
        return std::string(info.param.name);
    });

TEST(Integration, LatbenchStallPerMissSpeedup)
{
    // Section 5.1: clustering cuts the per-miss stall by ~5x (bounded
    // by bandwidth, not by lp = 10).
    const auto w = workloads::makeLatbench(tiny());
    const PairResult pair = runPair(w, sys::baseConfig(), 1);
    const double base_stall = pair.base.result.dataReadCycles;
    const double clust_stall = pair.clust.result.dataReadCycles;
    const double speedup = base_stall / clust_stall;
    EXPECT_GT(speedup, 2.5);
    EXPECT_LT(speedup, 10.0);  // cannot beat lp
}

TEST(Integration, LocalityPreserved)
{
    // "Our more detailed statistics show that the L2 miss count is
    // nearly unchanged in all applications" (Section 5.2).
    for (const char *name : {"em3d", "erlebacher", "lu", "ocean"}) {
        const PairResult pair = uniPair(name);
        const double base_misses = static_cast<double>(
            pair.base.result.l2.loadMisses +
            pair.base.result.l2.writeMisses);
        const double clust_misses = static_cast<double>(
            pair.clust.result.l2.loadMisses +
            pair.clust.result.l2.writeMisses);
        EXPECT_LT(std::abs(clust_misses - base_misses),
                  0.25 * base_misses + 50.0)
            << name << " base=" << base_misses
            << " clust=" << clust_misses;
    }
}

TEST(Integration, MshrOccupancyImproves)
{
    // Figure 4's qualitative claim: clustering raises the fraction of
    // time multiple read misses are outstanding.
    const PairResult pair = uniPair("latbench");
    EXPECT_GT(pair.clust.result.l2ReadMshr.fracAtLeast(4),
              2.0 * pair.base.result.l2ReadMshr.fracAtLeast(4) + 0.01);
}

TEST(Integration, MultiprocessorLuImproves)
{
    const auto w = workloads::makeLu(tiny());
    const PairResult pair = runPair(w, sys::baseConfig(), 4);
    EXPECT_GT(pair.reductionPct(), 5.0);
}

TEST(Integration, ExemplarConfigRunsAllApps)
{
    // The Table 3 substitute configuration executes every application
    // (uniprocessor) and mostly improves.
    int improved = 0;
    for (const char *name : {"em3d", "lu", "mst"}) {
        const auto w = workloads::makeByName(name, tiny());
        const PairResult pair = runPair(w, sys::exemplarConfig(), 1);
        improved += pair.reductionPct() > 0.0;
    }
    EXPECT_GE(improved, 2);
}

TEST(Integration, OneGHzShiftsTimeToMemory)
{
    // Section 5.2: at 1 GHz the memory fraction grows, so clustering's
    // absolute contribution via memory parallelism grows too.
    const auto w = workloads::makeEm3d(tiny());
    const PairResult base = runPair(w, sys::baseConfig(), 1);
    const PairResult fast = runPair(w, sys::oneGHzConfig(), 1);
    const double frac_base = base.base.result.dataComponent() /
                             static_cast<double>(base.base.result.cycles);
    const double frac_fast = fast.base.result.dataComponent() /
                             static_cast<double>(fast.base.result.cycles);
    EXPECT_GT(frac_fast, frac_base);
    EXPECT_GT(fast.reductionPct(), 0.8 * base.reductionPct());
}

TEST(Integration, ReportsRender)
{
    const auto w = workloads::makeMst(tiny());
    const PairResult pair = runPair(w, sys::baseConfig(), 1);
    std::vector<std::string> names{"mst"};
    std::vector<PairResult> pairs;
    pairs.push_back(pair);
    const std::string fig3 = formatFig3(names, pairs, "test");
    EXPECT_NE(fig3.find("Base"), std::string::npos);
    EXPECT_NE(fig3.find("100.0"), std::string::npos);
    const std::string table =
        formatReductionTable(names, pairs, "uniprocessor", "test");
    EXPECT_NE(table.find("uniprocessor"), std::string::npos);
    std::vector<const sys::RunResult *> runs{&pair.base.result,
                                             &pair.clust.result};
    const std::string fig4 =
        formatFig4({"base", "clust"}, runs, "test");
    EXPECT_NE(fig4.find("(a)"), std::string::npos);
}

} // namespace
} // namespace mpc::harness
