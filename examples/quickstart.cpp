/**
 * @file
 * Quickstart: the full mpclust pipeline on a ten-line kernel.
 *
 *   1. Build a loop-nest kernel with the IR builders.
 *   2. Run the memory-parallelism analysis (alpha, f, recurrences).
 *   3. Apply the clustering driver (unroll-and-jam etc.).
 *   4. Lower both versions to KISA and run them on the simulated
 *      out-of-order machine.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "ir/kernel.hh"
#include "system/system.hh"
#include "transform/driver.hh"

using namespace mpc;

int
main()
{
    // -----------------------------------------------------------------
    // 1. A row-wise matrix sweep (Figure 2(a) of the paper): perfect
    //    spatial locality, minimal miss clustering.
    // -----------------------------------------------------------------
    ir::Kernel kernel;
    kernel.name = "quickstart";
    ir::Array *a = kernel.addArray("A", ir::ScalType::F64, {256, 128});
    ir::Array *b = kernel.addArray("B", ir::ScalType::F64, {256, 128});

    auto subs = [](const char *j, const char *i) {
        std::vector<ir::ExprPtr> v;
        v.push_back(ir::varref(j));
        v.push_back(ir::varref(i));
        return v;
    };
    std::vector<ir::StmtPtr> inner;
    inner.push_back(ir::assign(
        ir::aref(b, subs("j", "i")),
        ir::add(ir::aref(a, subs("j", "i")), ir::fconst(1.0))));
    std::vector<ir::StmtPtr> outer;
    outer.push_back(
        ir::forLoop("i", ir::iconst(0), ir::iconst(128),
                    std::move(inner)));
    kernel.body.push_back(ir::forLoop("j", ir::iconst(0),
                                      ir::iconst(256), std::move(outer),
                                      1, /*parallel=*/true));
    ir::assignRefIds(kernel);
    ir::layoutArrays(kernel);

    std::printf("--- base kernel ---\n%s\n", kernel.toString().c_str());

    // -----------------------------------------------------------------
    // 2. Analyze the innermost loop.
    // -----------------------------------------------------------------
    auto nests = analysis::findLoopNests(kernel);
    analysis::AnalysisParams ap;
    ap.bodySize = codegen::loweredBodySize;
    const auto la = analysis::analyzeInnerLoop(kernel, nests[0], ap);
    std::printf("--- analysis ---\n%s\n", la.toString().c_str());

    // -----------------------------------------------------------------
    // 3. Cluster. The driver unroll-and-jams the j loop until the
    //    estimated memory parallelism f reaches alpha * lp.
    // -----------------------------------------------------------------
    ir::Kernel clustered = kernel.clone();
    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = codegen::loweredBodySize;
    const auto report = transform::applyClustering(clustered, params);
    std::printf("--- driver ---\n%s\n", report.toString().c_str());
    std::printf("--- clustered kernel (excerpt) ---\n%.1200s...\n\n",
                clustered.toString().c_str());

    // -----------------------------------------------------------------
    // 4. Simulate both on the Table 1 machine (64 KB L2 so the sweep
    //    misses).
    // -----------------------------------------------------------------
    auto simulate = [](const ir::Kernel &k, bool clustered_sched) {
        codegen::CodegenOptions options;
        options.clusteredSchedule = clustered_sched;
        std::vector<kisa::Program> programs;
        programs.push_back(codegen::lower(k, options));
        kisa::MemoryImage mem;
        sys::System system(sys::baseConfig(64 * 1024),
                           std::move(programs), mem);
        return system.run();
    };
    const auto base = simulate(kernel, false);
    const auto clust = simulate(clustered, true);
    std::printf("--- simulation (500 MHz, 64 KB L2) ---\n");
    std::printf("base:      %8llu cycles (%6.0f read-stall)\n",
                (unsigned long long)base.cycles, base.dataReadCycles);
    std::printf("clustered: %8llu cycles (%6.0f read-stall)\n",
                (unsigned long long)clust.cycles, clust.dataReadCycles);
    std::printf("reduction: %.1f%%\n",
                (1.0 - double(clust.cycles) / double(base.cycles)) *
                    100.0);
    return 0;
}
