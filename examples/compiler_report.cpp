/**
 * @file
 * Compiler-facing demo: prints, for every workload, the memory-
 * parallelism analysis of each dominant loop nest (leading references,
 * dependence edges, recurrences, alpha, f) and the transformation the
 * driver chose — the information a compiler engineer would inspect
 * when porting the framework.
 *
 * Build & run:  ./build/examples/compiler_report [workload]
 */

#include <cstdio>
#include <cstring>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "harness/profiler.hh"
#include "transform/driver.hh"
#include "workloads/workload.hh"

using namespace mpc;

static void
reportOn(const workloads::Workload &w)
{
    std::printf("==================== %s ====================\n",
                w.name.c_str());
    std::printf("pattern: %s\n\n", w.pattern.c_str());

    // Analysis of each nest in the base kernel.
    ir::Kernel kernel = w.kernel.clone();
    analysis::AnalysisParams ap;
    ap.bodySize = codegen::loweredBodySize;
    auto nests = analysis::findLoopNests(kernel);
    for (size_t n = 0; n < nests.size(); ++n) {
        const auto la = analysis::analyzeInnerLoop(kernel, nests[n], ap);
        std::printf("-- nest %zu (inner loop '%s', depth %d) --\n%s\n",
                    n,
                    nests[n].inner()->var.empty()
                        ? "(while)"
                        : nests[n].inner()->var.c_str(),
                    nests[n].depth(), la.toString().c_str());
    }

    // Profile P_m and run the driver.
    kisa::MemoryImage scratch;
    w.init(scratch);
    const auto base_prog = codegen::lower(kernel);
    mem::CacheConfig geometry;
    geometry.sizeBytes = w.l2Bytes;
    geometry.assoc = 4;
    const auto profile =
        harness::CacheProfile::measure(base_prog, scratch, geometry);

    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = [&profile](int id) { return profile.missRate(id); };
    const auto report = transform::applyClustering(kernel, params);
    std::printf("-- driver decisions --\n%s\n", report.toString().c_str());
    std::printf("-- transformed kernel --\n%s\n",
                kernel.toString().c_str());
}

int
main(int argc, char **argv)
{
    workloads::SizeParams size;
    size.scale = 1;
    if (argc > 1) {
        reportOn(workloads::makeByName(argv[1], size));
        return 0;
    }
    reportOn(workloads::makeLatbench(size));
    for (const auto &w : workloads::makeAllApps(size))
        reportOn(w);
    return 0;
}
