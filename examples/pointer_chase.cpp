/**
 * @file
 * Pointer-chase latency demo: reproduces the paper's Latbench story
 * interactively. A lat_mem_rd-style dependent chase serializes every
 * miss; unroll-and-jamming the outer chain loop overlaps lp of them.
 * Prints per-miss latency for several jam degrees — the knee appears
 * where bank bandwidth, not the MSHR count, becomes the bottleneck
 * (Section 5.1's observation).
 *
 * Build & run:  ./build/examples/pointer_chase
 */

#include <cstdio>

#include "codegen/codegen.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

using namespace mpc;

int
main()
{
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeLatbench(size);
    const double misses = 10.0 * 64.0;   // chains * length at scale 1

    std::printf("degree  cycles    stall/miss (ns)  speedup\n");
    std::printf("-------------------------------------------\n");
    double base_stall = 0.0;
    for (int degree : {1, 2, 4, 8, 10, 16}) {
        harness::RunSpec spec;
        spec.clustered = degree > 1;
        spec.maxUnroll = degree;
        const auto run = harness::runWorkload(w, spec);
        const double stall =
            run.result.dataComponent() / misses * 2.0;  // ns at 500 MHz
        if (degree == 1)
            base_stall = stall;
        std::printf("%-6d  %8llu  %15.1f  %6.2fx\n", degree,
                    (unsigned long long)run.result.cycles, stall,
                    base_stall / stall);
    }
    std::printf("\nThe paper measures 171 -> 32 ns (5.34x) with 10 "
                "MSHRs; the speedup\nsaturates below 10x because bus "
                "and bank utilization approach their\nlimits, exactly "
                "as Section 5.1 reports.\n");
    return 0;
}
