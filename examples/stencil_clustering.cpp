/**
 * @file
 * Stencil clustering demo: the Ocean-style 5-point stencil, showing
 * the paper's key tension — a loop whose base version already enjoys
 * some clustering (the j-1/j+1 rows are different cache lines) gains
 * the least from the transformations. Compares the stencil against the
 * single-stream sweep, printing the analysis and the execution-time
 * breakdowns side by side.
 *
 * Build & run:  ./build/examples/stencil_clustering
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

using namespace mpc;

int
main()
{
    workloads::SizeParams size;
    size.scale = 2;

    // Ocean: 5-point stencil (partially clustered base).
    const auto ocean = workloads::makeOcean(size);
    std::printf("running ocean (base + clustered)...\n");
    const auto ocean_pair =
        harness::runPair(ocean, sys::baseConfig(), 1);

    // Erlebacher: unit-stride sweeps (fully serialized base).
    const auto erle = workloads::makeErlebacher(size);
    std::printf("running erlebacher (base + clustered)...\n");
    const auto erle_pair = harness::runPair(erle, sys::baseConfig(), 1);

    std::vector<std::string> names{"ocean", "erlebacher"};
    std::vector<harness::PairResult> pairs;
    pairs.push_back(ocean_pair);
    pairs.push_back(erle_pair);
    std::printf("\n%s\n",
                harness::formatFig3(
                    names, pairs,
                    "stencil (partially clustered base) vs sweep "
                    "(serialized base)")
                    .c_str());
    std::printf("%s%s\nThe sweep gains more: its base had no memory "
                "parallelism to start\nwith, while the stencil's "
                "neighboring-row accesses already overlap —\nthe "
                "paper's explanation for Ocean's small benefit.\n",
                harness::formatDriverSummary("ocean",
                                             pairs[0].clust.report)
                    .c_str(),
                harness::formatDriverSummary("erlebacher",
                                             pairs[1].clust.report)
                    .c_str());
    return 0;
}
