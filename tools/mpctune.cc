/**
 * @file
 * mpctune command-line driver: the model-pruned pipeline autotuner
 * (harness/autotune.hh) over one or more workloads.
 *
 * Usage:
 *   mpctune <workload> [<workload>...] [options]
 *
 *   --scale N        input scale 1..3 (default 2)
 *   --procs N        processor count (default: workload's, or 1)
 *   --config NAME    base | 1ghz | exemplar (default base)
 *   --budget N       candidates simulated after model pruning
 *                    (default 8)
 *   --cache DIR      content-addressed ResultStore directory
 *                    (harness/store.hh); reruns with the same
 *                    kernel/config/spec never re-simulate, and the
 *                    store is shared with mpcfarm sweeps (default:
 *                    off)
 *   --json PREFIX    write MPCTUNE_<workload>.json under PREFIX
 *                    (a directory; default: off)
 *   --jobs N         parallel simulations (default: MPC_JOBS or
 *                    hardware concurrency)
 *   --exec-tier T    functional-execution backend: interp | threaded.
 *                    Resolved once at startup: the flag wins over
 *                    $MPC_EXEC_TIER; default threaded.
 *
 * stdout carries only the deterministic tuning report — identical
 * between a cold run and a fully cached rerun. Cache hit/miss counts
 * go to stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "harness/autotune.hh"
#include "kisa/exec_threaded.hh"
#include "workloads/workload.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <workload> [<workload>...]\n"
                 "  [--scale N] [--procs N] [--config base|1ghz|"
                 "exemplar]\n"
                 "  [--budget N] [--cache DIR] [--json PREFIX] "
                 "[--jobs N]\n"
                 "  [--exec-tier interp|threaded]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mpc;

    if (argc < 2)
        usage(argv[0]);

    std::vector<std::string> names;
    workloads::SizeParams size;
    size.scale = 2;
    int procs = -1;
    std::string config_name = "base";
    int budget = 8;
    std::string cache_dir;
    std::string json_prefix;
    int jobs = 0;
    std::optional<kisa::ExecTier> exec_tier;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto next = [&]() -> const char * {
            if (a + 1 >= argc)
                usage(argv[0]);
            return argv[++a];
        };
        if (arg == "--scale")
            size.scale = std::atoi(next());
        else if (arg == "--procs")
            procs = std::atoi(next());
        else if (arg == "--config")
            config_name = next();
        else if (arg == "--budget")
            budget = std::atoi(next());
        else if (arg == "--cache")
            cache_dir = next();
        else if (arg == "--json")
            json_prefix = next();
        else if (arg == "--jobs")
            jobs = std::atoi(next());
        else if (arg == "--exec-tier") {
            const char *tier = next();
            if (std::strcmp(tier, "interp") == 0)
                exec_tier = kisa::ExecTier::Interp;
            else if (std::strcmp(tier, "threaded") == 0)
                exec_tier = kisa::ExecTier::Threaded;
            else {
                std::fprintf(stderr,
                             "mpctune: bad --exec-tier '%s' (expected "
                             "interp|threaded)\n",
                             tier);
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else
            names.push_back(arg);
    }
    if (names.empty())
        usage(argv[0]);

    // Resolve the execution tier exactly once per invocation: the flag
    // wins over MPC_EXEC_TIER, and the pin keeps every downstream
    // execTierFromEnv() call on the same tier (see mpclust).
    kisa::pinExecTier(exec_tier.has_value() ? *exec_tier
                                            : kisa::execTierFromEnv());

    harness::TuneOptions opts;
    if (config_name == "base")
        opts.config = sys::baseConfig();
    else if (config_name == "1ghz")
        opts.config = sys::oneGHzConfig();
    else if (config_name == "exemplar")
        opts.config = sys::exemplarConfig();
    else
        usage(argv[0]);
    opts.procs = procs;
    opts.simBudget = budget;
    opts.cacheDir = cache_dir;
    opts.threads = jobs;
    opts.scale = size.scale;
    if (!json_prefix.empty())
        std::filesystem::create_directories(json_prefix);

    int total_hits = 0, total_misses = 0;
    for (const std::string &name : names) {
        const workloads::Workload w = workloads::makeByName(name, size);
        const harness::TuneReport report = harness::tune(w, opts);
        std::fputs(report.toString().c_str(), stdout);
        std::fputs("\n", stdout);
        total_hits += report.cacheHits;
        total_misses += report.cacheMisses;
        if (!json_prefix.empty()) {
            const std::string path =
                json_prefix + "/MPCTUNE_" + name + ".json";
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "mpctune: cannot write %s\n",
                             path.c_str());
                return 1;
            }
            out << report.toJson();
            std::fprintf(stderr, "mpctune: wrote %s\n", path.c_str());
        }
    }
    if (!cache_dir.empty())
        std::fprintf(stderr,
                     "mpctune: cache %d hit(s), %d miss(es)\n",
                     total_hits, total_misses);
    return 0;
}
