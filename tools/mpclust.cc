/**
 * @file
 * mpclust command-line driver: run any workload under any configuration
 * with or without the clustering transformations, and print the
 * execution-time breakdown, the compiler's decisions, MSHR utilization,
 * or the transformed kernel.
 *
 * Usage:
 *   mpclust <workload> [options]
 *
 *   --scale N        input scale 1..3 (default 2)
 *   --procs N        processor count (default: workload's, or 1)
 *   --shards K       step the simulation on K host threads (or set
 *                    MPC_SHARDS; results are bit-identical to the
 *                    single-thread stepper at any K)
 *   --config NAME    base | 1ghz | exemplar (default base)
 *   --base-only      run only the untransformed version
 *   --clust-only     run only the clustered version
 *   --prefetch N     also insert software prefetches N lines ahead
 *   --max-unroll N   cap the unroll-and-jam degree (default 16)
 *   --pipeline SPEC  transform with a custom pass pipeline (comma-
 *                    separated pass names, e.g. "cluster,prefetch")
 *                    instead of the default driver pipeline
 *   --dump-ir MODE   dump the IR ("after-each-pass") while transforming
 *   --exec-tier T    functional-execution backend for profiling and
 *                    per-pass verification: interp | threaded.
 *                    Resolved once at startup: the flag wins over
 *                    $MPC_EXEC_TIER; default threaded.
 *   --list-passes    list the registered passes and exit
 *   --show-kernel    print the (transformed) kernel IR
 *   --show-refs      per-reference L2 access/miss counts (clustered run)
 *   --show-mshr      print the Figure 4 style MSHR utilization
 *   --show-metrics   collect and print the observability metrics
 *                    (MLP histogram, cluster sizes, stall taxonomy)
 *   --trace PATH     dump a Chrome-trace JSON per run (PATH is
 *                    uniquified per workload/variant/procs)
 *   --list           list workloads and exit
 *
 * With both a base and a clustered run, also prints the model-vs-
 * measured table: predicted per-nest f (Equations 1-4) next to the
 * measured MLP of each run.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "codegen/codegen.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kisa/exec_threaded.hh"
#include "transform/pipeline.hh"
#include "transform/transforms.hh"
#include "workloads/workload.hh"

using namespace mpc;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <workload> [--scale N] [--procs N] [--shards K] "
                 "[--config base|1ghz|exemplar]\n"
                 "       [--base-only|--clust-only] [--prefetch N] "
                 "[--max-unroll N]\n"
                 "       [--pipeline SPEC] [--dump-ir after-each-pass] "
                 "[--exec-tier interp|threaded]\n"
                 "       [--show-kernel] [--show-mshr] "
                 "[--show-metrics] [--trace PATH]\n"
                 "       | --list | --list-passes\n",
                 argv0);
    std::exit(2);
}

void
printRun(const char *label, const sys::RunResult &r)
{
    std::printf("%-6s %10llu cycles (%.2f ms simulated) | busy %.0f  "
                "cpu %.0f  dataR %.0f  dataW %.0f  sync %.0f\n",
                label, (unsigned long long)r.cycles,
                r.execNs() / 1e6, r.busyCycles, r.cpuCycles,
                r.dataReadCycles, r.dataWriteCycles, r.syncCycles);
    std::printf("       l1: %llu loads, %llu misses | l2: %llu+%llu "
                "misses, %llu coalesced | bus %.0f%% bank %.0f%%\n",
                (unsigned long long)r.l1.loads,
                (unsigned long long)r.l1.loadMisses,
                (unsigned long long)r.l2.loadMisses,
                (unsigned long long)r.l2.writeMisses,
                (unsigned long long)(r.l2.loadCoalesced +
                                     r.l2.writeCoalesced),
                r.busUtilization * 100.0, r.bankUtilization * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    if (std::strcmp(argv[1], "--list-passes") == 0) {
        for (const auto &pass :
             transform::PassRegistry::instance().names())
            std::printf("%s\n", pass.c_str());
        return 0;
    }
    if (std::strcmp(argv[1], "--list") == 0) {
        workloads::SizeParams size;
        std::printf("latbench\n");
        for (const auto &w : workloads::makeAllApps(size))
            std::printf("%s\n", w.name.c_str());
        return 0;
    }

    const std::string name = argv[1];
    workloads::SizeParams size;
    size.scale = 2;
    int procs = -1;
    int shards = 0;
    std::string config_name = "base";
    bool run_base = true, run_clust = true;
    int prefetch = 0;
    int max_unroll = 16;
    bool show_kernel = false, show_mshr = false, show_refs = false;
    bool show_metrics = false;
    std::string trace_path;
    std::string pipeline_spec;
    std::string dump_ir;
    std::optional<kisa::ExecTier> exec_tier;

    for (int a = 2; a < argc; ++a) {
        const std::string arg = argv[a];
        auto next = [&]() -> const char * {
            if (a + 1 >= argc)
                usage(argv[0]);
            return argv[++a];
        };
        if (arg == "--scale")
            size.scale = std::atoi(next());
        else if (arg == "--procs")
            procs = std::atoi(next());
        else if (arg == "--shards")
            shards = std::atoi(next());
        else if (arg == "--config")
            config_name = next();
        else if (arg == "--base-only")
            run_clust = false;
        else if (arg == "--clust-only")
            run_base = false;
        else if (arg == "--prefetch")
            prefetch = std::atoi(next());
        else if (arg == "--max-unroll")
            max_unroll = std::atoi(next());
        else if (arg == "--show-kernel")
            show_kernel = true;
        else if (arg == "--show-refs")
            show_refs = true;
        else if (arg == "--show-mshr")
            show_mshr = true;
        else if (arg == "--show-metrics")
            show_metrics = true;
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--pipeline")
            pipeline_spec = next();
        else if (arg == "--dump-ir")
            dump_ir = next();
        else if (arg == "--exec-tier") {
            const char *tier = next();
            if (std::strcmp(tier, "interp") == 0)
                exec_tier = kisa::ExecTier::Interp;
            else if (std::strcmp(tier, "threaded") == 0)
                exec_tier = kisa::ExecTier::Threaded;
            else {
                std::fprintf(stderr,
                             "mpclust: bad --exec-tier '%s' (expected "
                             "interp|threaded)\n",
                             tier);
                return 2;
            }
        } else
            usage(argv[0]);
    }

    // Resolve the execution tier exactly once per invocation: the flag
    // wins over MPC_EXEC_TIER, and pinning the result means every
    // downstream execTierFromEnv() call (profiler, pipeline
    // verification, workload init) sees the same tier even if the
    // environment changes mid-run.
    kisa::pinExecTier(exec_tier.has_value() ? *exec_tier
                                            : kisa::execTierFromEnv());

    if (!pipeline_spec.empty()) {
        // Validate eagerly for a clean CLI error before any run.
        transform::Pipeline parsed;
        std::string error;
        if (!transform::Pipeline::parse(pipeline_spec, parsed, error)) {
            std::fprintf(stderr, "mpclust: bad --pipeline: %s\n",
                         error.c_str());
            return 2;
        }
    }

    auto w = workloads::makeByName(name, size);
    if (prefetch > 0)
        transform::insertPrefetches(w.kernel, prefetch);
    if (procs < 0)
        procs = std::max(w.defaultProcs, 1);

    harness::RunSpec spec;
    if (config_name == "base")
        spec.config = sys::baseConfig();
    else if (config_name == "1ghz")
        spec.config = sys::oneGHzConfig();
    else if (config_name == "exemplar")
        spec.config = sys::exemplarConfig();
    else
        usage(argv[0]);
    spec.procs = procs;
    if (shards > 0)
        spec.config.shards = shards;
    spec.maxUnroll = max_unroll;
    spec.config.obsMetrics = show_metrics;
    spec.config.obsTracePath = trace_path;

    std::printf("workload %s  scale %d  procs %d  config %s\n\n",
                name.c_str(), size.scale, procs, config_name.c_str());

    harness::WorkloadRun base, clust;
    if (run_base) {
        spec.clustered = false;
        base = harness::runWorkload(w, spec);
        printRun("base", base.result);
        if (show_metrics)
            std::printf("%s", base.result.obsMetrics.toString().c_str());
    }
    if (run_clust) {
        spec.clustered = true;
        spec.pipeline = pipeline_spec;
        spec.dumpIr = dump_ir;
        clust = harness::runWorkload(w, spec);
        printRun("clust", clust.result);
        if (show_metrics)
            std::printf("%s",
                        clust.result.obsMetrics.toString().c_str());
        std::printf("\n%s",
                    harness::formatDriverSummary(name, clust.report)
                        .c_str());
        if (show_kernel)
            std::printf("\n%s\n", clust.kernelText.c_str());
    }
    if (run_base && run_clust) {
        std::printf("\nexecution time reduction: %.1f%%\n",
                    (1.0 - double(clust.result.cycles) /
                               double(base.result.cycles)) *
                        100.0);
        harness::PairResult pair;
        pair.base = base;
        pair.clust = clust;
        std::printf("\n%s",
                    harness::formatModelVsMeasured(
                        {name}, {pair}, "model vs measured")
                        .c_str());
    }
    if (show_refs && run_clust) {
        std::printf("\nper-reference L2 behaviour (clustered run):\n");
        std::printf("  %-8s %12s %12s %10s\n", "refId", "accesses",
                    "misses", "miss rate");
        clust.result.l2.perRef.forEach([](std::uint32_t ref_id,
                                          const auto &counts) {
            if (counts.accesses == 0)
                return;
            std::printf("  %-8u %12llu %12llu %9.1f%%\n", ref_id,
                        (unsigned long long)counts.accesses,
                        (unsigned long long)counts.misses,
                        100.0 * double(counts.misses) /
                            double(counts.accesses));
        });
    }
    if (show_mshr && run_base && run_clust) {
        std::vector<const sys::RunResult *> runs{&base.result,
                                                 &clust.result};
        std::printf("\n%s",
                    harness::formatFig4({"base", "clust"}, runs,
                                        "L2 MSHR utilization")
                        .c_str());
    }
    return 0;
}
