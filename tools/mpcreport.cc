/**
 * @file
 * Telemetry report tool: merges the JSON artifacts the harness and
 * benches emit — SAMPLES time series (schema "mpc-samples-v1"),
 * BENCH_*.json, MODEL_VS_MEASURED_*.json, FIG4_mshr.json, and
 * ResultStore entries (schema "mpc-jobresult-v1") — into one terminal
 * (or markdown) report.
 *
 * Usage:
 *   mpcreport [--markdown] [--store DIR] [FILE.json...]
 *
 * --store DIR walks a content-addressed ResultStore (the sharded
 * layout mpcfarm and mpctune populate; see harness/store.hh), skipping
 * its quarantine/ subtree, and renders every stored JobResult in one
 * key-sorted table — the summary view of everything a sweep has
 * computed so far.
 *
 * The report renders, per input kind:
 *  - a provenance table: every artifact's RunManifest (workload,
 *    config + hash, pipeline, exec tier, step mode), with warnings
 *    when the artifacts disagree on config hash, exec tier, or step
 *    mode — the mismatches that make cross-artifact comparisons lie;
 *  - per samples file, the epoch timeline: mean MLP across nodes with
 *    a bar chart, busy fraction, and the stall-taxonomy stacked table
 *    (per-epoch deltas, which tile the run's aggregate taxonomy);
 *  - base-vs-clustered side-by-side MLP timelines for samples files
 *    that share a workload (manifest-matched), the report the paper's
 *    Figure 4 discussion wants: when in the run the transformed code
 *    actually overlaps its misses.
 *
 * Artifact classification is by schema field / shape, not file name,
 * so renamed or relocated artifacts still merge.
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace
{

using mpc::json::Value;

// ---------------------------------------------------------------------
// Table rendering (text or markdown).

bool g_markdown = false;

struct Table
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    void
    print() const
    {
        std::vector<size_t> width(header.size());
        for (size_t c = 0; c < header.size(); ++c)
            width[c] = header[c].size();
        for (const auto &row : rows)
            for (size_t c = 0; c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());
        const auto line = [&](const std::vector<std::string> &cells) {
            std::string out = g_markdown ? "| " : "  ";
            for (size_t c = 0; c < cells.size(); ++c) {
                out += cells[c];
                out.append(width[c] - cells[c].size(), ' ');
                out += g_markdown ? " | " : "  ";
            }
            std::printf("%s\n", out.c_str());
        };
        line(header);
        if (g_markdown) {
            std::string sep = "|";
            for (const size_t w : width)
                sep += " " + std::string(w, '-') + " |";
            std::printf("%s\n", sep.c_str());
        } else {
            std::string sep = "  ";
            for (const size_t w : width)
                sep += std::string(w, '-') + "  ";
            std::printf("%s\n", sep.c_str());
        }
        for (const auto &row : rows)
            line(row);
    }
};

void
heading(const std::string &text)
{
    if (g_markdown)
        std::printf("\n## %s\n\n", text.c_str());
    else
        std::printf("\n== %s ==\n", text.c_str());
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof buf, format, args);
    va_end(args);
    return buf;
}

// ---------------------------------------------------------------------
// Artifact model.

/** The manifest fields the report shows and cross-checks. */
struct Manifest
{
    bool present = false;
    std::string workload, config, configHash, pipeline, execTier,
        stepMode, kernelHash;
    int procs = 0;

    static Manifest
    fromJson(const Value *v)
    {
        Manifest m;
        if (v == nullptr || v->t != Value::T::Obj)
            return m;
        m.present = true;
        m.workload = mpc::json::strField(*v, "workload");
        m.config = mpc::json::strField(*v, "config");
        m.configHash = mpc::json::strField(*v, "configHash");
        m.kernelHash = mpc::json::strField(*v, "kernelHash");
        m.pipeline = mpc::json::strField(*v, "pipeline");
        m.execTier = mpc::json::strField(*v, "execTier");
        m.stepMode = mpc::json::strField(*v, "stepMode");
        m.procs = static_cast<int>(mpc::json::numField(*v, "procs"));
        return m;
    }
};

/** One parsed epoch of a samples file. */
struct Epoch
{
    double t = 0.0;
    double mlp = 0.0;       ///< mean over nodes
    double busy = 0.0;      ///< mean busyFrac over nodes
    std::vector<std::pair<std::string, double>> stalls; ///< cat -> sum
};

struct Artifact
{
    std::string path;
    std::string kind;       ///< samples|bench|model|fig4|tune|perfcmp
    Manifest manifest;
    Value root;

    // samples-only:
    double period = 0.0;
    std::vector<Epoch> epochs;
};

bool
loadFile(const std::string &path, std::string &text)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    return true;
}

void
parseSamples(Artifact &a)
{
    a.period = mpc::json::numField(a.root, "period");
    const Value *epochs = a.root.field("epochs");
    if (epochs == nullptr || epochs->t != Value::T::Arr)
        return;
    for (const Value &e : epochs->arr) {
        Epoch ep;
        ep.t = mpc::json::numField(e, "t");
        int n = 0;
        if (const Value *nodes = e.field("nodes");
            nodes != nullptr && nodes->t == Value::T::Arr) {
            for (const Value &node : nodes->arr) {
                ep.mlp += mpc::json::numField(node, "mlp");
                ep.busy += mpc::json::numField(node, "busyFrac");
                ++n;
            }
            if (n > 0) {
                ep.mlp /= n;
                ep.busy /= n;
            }
        }
        std::map<std::string, double> sums;
        std::vector<std::string> order;
        if (const Value *cores = e.field("cores");
            cores != nullptr && cores->t == Value::T::Arr) {
            for (const Value &core : cores->arr) {
                const Value *st = core.field("stalls");
                if (st == nullptr || st->t != Value::T::Obj)
                    continue;
                for (const auto &[cat, v] : st->obj) {
                    if (sums.find(cat) == sums.end())
                        order.push_back(cat);
                    sums[cat] += v.num;
                }
            }
        }
        for (const std::string &cat : order)
            ep.stalls.emplace_back(cat, sums[cat]);
        a.epochs.push_back(std::move(ep));
    }
}

/** Classify by schema/shape; "" = unrecognized. */
std::string
classify(const Value &root)
{
    const std::string schema = mpc::json::strField(root, "schema");
    if (schema == "mpc-samples-v1")
        return "samples";
    if (schema == "mpctune-cache-v1")
        return "tune";
    if (schema == "mpc-jobresult-v1")
        return "jobresult";
    if (schema == "perfcmp-v1")
        return "perfcmp";
    if (root.field("bench") != nullptr && root.field("runs") != nullptr)
        return "bench";
    if (root.field("apps") != nullptr)
        return "model";
    if (root.field("maxLevel") != nullptr)
        return "fig4";
    return "";
}

// ---------------------------------------------------------------------
// Report sections.

void
reportManifests(const std::vector<Artifact> &artifacts)
{
    heading("artifact provenance");
    Table t;
    t.header = {"artifact", "kind", "workload", "config", "configHash",
                "pipeline", "procs", "tier", "stepMode"};
    for (const Artifact &a : artifacts) {
        const Manifest &m = a.manifest;
        if (!m.present) {
            t.rows.push_back({a.path, a.kind, "-", "-", "-", "-", "-",
                              "-", "-"});
            continue;
        }
        t.rows.push_back(
            {a.path, a.kind, m.workload, m.config, m.configHash,
             m.pipeline.empty() ? "(base)" : m.pipeline,
             std::to_string(m.procs), m.execTier, m.stepMode});
    }
    t.print();

    // Mismatch warnings: artifacts that disagree on these fields are
    // not comparable, and the disagreement is exactly what a manifest
    // exists to surface. Exec tier and step mode must agree globally;
    // config hashes only within one workload — the harness scales the
    // cache with the workload's input, so two workloads legitimately
    // hash different configs.
    const auto distinct = [&](auto get, const char *what,
                              const std::string &workload) {
        std::vector<std::string> seen;
        for (const Artifact &a : artifacts) {
            if (!a.manifest.present)
                continue;
            if (!workload.empty() && a.manifest.workload != workload)
                continue;
            const std::string v = get(a.manifest);
            if (v.empty())
                continue;
            if (std::find(seen.begin(), seen.end(), v) == seen.end())
                seen.push_back(v);
        }
        if (seen.size() > 1) {
            std::string list;
            for (const std::string &v : seen)
                list += (list.empty() ? "" : ", ") + v;
            std::printf("warning: artifacts%s%s disagree on %s: %s\n",
                        workload.empty() ? "" : " for ",
                        workload.c_str(), what, list.c_str());
        }
    };
    distinct([](const Manifest &m) { return m.execTier; }, "exec tier",
             "");
    distinct([](const Manifest &m) { return m.stepMode; }, "step mode",
             "");
    std::vector<std::string> workloads;
    for (const Artifact &a : artifacts)
        if (a.manifest.present && !a.manifest.workload.empty() &&
            std::find(workloads.begin(), workloads.end(),
                      a.manifest.workload) == workloads.end())
            workloads.push_back(a.manifest.workload);
    for (const std::string &w : workloads)
        distinct([](const Manifest &m) { return m.configHash; },
                 "config hash", w);
    int missing = 0;
    for (const Artifact &a : artifacts)
        missing += a.manifest.present ? 0 : 1;
    if (missing > 0)
        std::printf("warning: %d artifact(s) carry no manifest "
                    "(pre-manifest files?)\n",
                    missing);
}

void
reportSamples(const Artifact &a)
{
    heading(fmt("epoch timeline: %s (%s%s)", a.path.c_str(),
                a.manifest.workload.c_str(),
                a.manifest.pipeline.empty() ? "" : ", clustered"));
    if (a.epochs.empty()) {
        std::printf("  (no epochs)\n");
        return;
    }
    double max_mlp = 0.0;
    for (const Epoch &e : a.epochs)
        max_mlp = std::max(max_mlp, e.mlp);
    Table t;
    t.header = {"cycle", "MLP", "busy", "MLP bar"};
    for (const Epoch &e : a.epochs) {
        const int bar =
            max_mlp > 0 ? static_cast<int>(e.mlp / max_mlp * 32 + 0.5)
                        : 0;
        t.rows.push_back({fmt("%.0f", e.t), fmt("%.2f", e.mlp),
                          fmt("%.0f%%", e.busy * 100.0),
                          std::string(static_cast<size_t>(bar), '#')});
    }
    t.print();

    // Stall taxonomy per epoch (summed over cores). Per-epoch deltas:
    // the columns tile the run's aggregate taxonomy exactly.
    if (!a.epochs.front().stalls.empty()) {
        heading(fmt("stall taxonomy by epoch: %s", a.path.c_str()));
        Table st;
        st.header = {"cycle"};
        for (const auto &[cat, sum] : a.epochs.front().stalls)
            st.header.push_back(
                cat.rfind("stall.", 0) == 0 ? cat.substr(6) : cat);
        for (const Epoch &e : a.epochs) {
            std::vector<std::string> row{fmt("%.0f", e.t)};
            for (const auto &[cat, sum] : e.stalls)
                row.push_back(fmt("%.0f", sum));
            st.rows.push_back(std::move(row));
        }
        st.print();
    }
}

/** Base-vs-clustered MLP, epoch by epoch, for one workload's pair of
 *  samples artifacts. */
void
reportPairs(const std::vector<Artifact> &artifacts)
{
    std::map<std::string, std::vector<const Artifact *>> byWorkload;
    for (const Artifact &a : artifacts)
        if (a.kind == "samples" && a.manifest.present)
            byWorkload[a.manifest.workload].push_back(&a);
    for (const auto &[workload, files] : byWorkload) {
        const Artifact *base = nullptr, *clust = nullptr;
        for (const Artifact *a : files) {
            if (a->manifest.pipeline.empty() && base == nullptr)
                base = a;
            else if (!a->manifest.pipeline.empty() && clust == nullptr)
                clust = a;
        }
        if (base == nullptr || clust == nullptr)
            continue;
        heading(fmt("base vs clustered MLP: %s", workload.c_str()));
        Table t;
        t.header = {"cycle", "base MLP", "clust MLP", "ratio"};
        const size_t n =
            std::max(base->epochs.size(), clust->epochs.size());
        for (size_t i = 0; i < n; ++i) {
            const Epoch *b =
                i < base->epochs.size() ? &base->epochs[i] : nullptr;
            const Epoch *c =
                i < clust->epochs.size() ? &clust->epochs[i] : nullptr;
            const double tick = b != nullptr ? b->t
                                : c != nullptr ? c->t
                                               : 0.0;
            t.rows.push_back(
                {fmt("%.0f", tick),
                 b != nullptr ? fmt("%.2f", b->mlp) : "-",
                 c != nullptr ? fmt("%.2f", c->mlp) : "-",
                 b != nullptr && c != nullptr && b->mlp > 0
                     ? fmt("%.2f", c->mlp / b->mlp)
                     : "-"});
        }
        t.print();
    }
}

void
reportBench(const Artifact &a)
{
    heading(fmt("bench timings: %s", a.path.c_str()));
    const Value *runs = a.root.field("runs");
    if (runs == nullptr || runs->t != Value::T::Arr)
        return;
    Table t;
    t.header = {"label", "simCycles", "wall (s)", "cyc/s"};
    for (const Value &r : runs->arr)
        t.rows.push_back(
            {mpc::json::strField(r, "label"),
             fmt("%.0f", mpc::json::numField(r, "simCycles")),
             fmt("%.3f", mpc::json::numField(r, "wallSeconds")),
             fmt("%.0f", mpc::json::numField(r, "cyclesPerSec"))});
    t.print();
}

void
reportModel(const Artifact &a)
{
    heading(fmt("model vs measured: %s", a.path.c_str()));
    const Value *apps = a.root.field("apps");
    if (apps == nullptr || apps->t != Value::T::Arr)
        return;
    Table t;
    t.header = {"app", "MLP base", "MLP clust"};
    for (const Value &app : apps->arr)
        t.rows.push_back(
            {mpc::json::strField(app, "app"),
             fmt("%.2f", mpc::json::numField(app, "mlpBase")),
             fmt("%.2f", mpc::json::numField(app, "mlpClust"))});
    t.print();
}

/** One key-sorted table over every "jobresult" artifact (the --store
 *  walk, plus any store entry named explicitly). */
void
reportStore(const std::vector<Artifact> &artifacts)
{
    std::vector<const Artifact *> entries;
    for (const Artifact &a : artifacts)
        if (a.kind == "jobresult")
            entries.push_back(&a);
    if (entries.empty())
        return;
    heading(fmt("result store (%zu entries)", entries.size()));
    Table t;
    t.header = {"key", "workload", "config", "pipeline", "procs",
                "tier", "cycles"};
    for (const Artifact *a : entries) {
        // The key is the file stem of the sharded entry path.
        std::string key = a->path;
        if (const size_t slash = key.rfind('/');
            slash != std::string::npos)
            key = key.substr(slash + 1);
        if (const size_t dot = key.rfind('.');
            dot != std::string::npos)
            key = key.substr(0, dot);
        const Manifest &m = a->manifest;
        std::string cycles = "-";
        const bool ok =
            a->root.field("ok") != nullptr &&
            a->root.field("ok")->t == Value::T::Bool &&
            a->root.field("ok")->b;
        if (const Value *res = a->root.field("result");
            ok && res != nullptr && res->t == Value::T::Obj)
            cycles = fmt("%.0f", mpc::json::numField(*res, "cycles"));
        else if (!ok)
            cycles = "FAILED";
        t.rows.push_back({key, m.present ? m.workload : "-",
                          m.present ? m.config : "-",
                          m.present && !m.pipeline.empty() ? m.pipeline
                                                           : "(base)",
                          m.present ? std::to_string(m.procs) : "-",
                          m.present ? m.execTier : "-", cycles});
    }
    std::sort(t.rows.begin(), t.rows.end());
    t.print();
}

void
reportTune(const Artifact &a)
{
    heading(fmt("tune cache entry: %s", a.path.c_str()));
    const Value *runs = a.root.field("runs");
    if (runs == nullptr || runs->t != Value::T::Arr ||
        runs->arr.empty())
        return;
    const Value &run = runs->arr[0];
    std::printf("  spec %s: %.0f cycles, MLP %.2f\n",
                mpc::json::strField(a.root, "spec").c_str(),
                mpc::json::numField(run, "simCycles"),
                mpc::json::numField(run, "mlp"));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::vector<std::string> stores;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--markdown") {
            g_markdown = true;
        } else if (arg == "--store") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mpcreport: --store needs DIR\n");
                return 2;
            }
            stores.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: mpcreport [--markdown] [--store DIR] "
                        "[FILE.json...]\n");
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    // A store walk appends every entry under the sharded layout except
    // the quarantine/ subtree, in sorted order so the report is
    // deterministic regardless of directory enumeration order.
    for (const std::string &dir : stores) {
        std::error_code ec;
        std::vector<std::string> found;
        const std::filesystem::path quarantine =
            std::filesystem::path(dir) / "quarantine";
        for (std::filesystem::recursive_directory_iterator
                 it(dir, ec),
             end;
             !ec && it != end; it.increment(ec)) {
            if (it->path() == quarantine) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file(ec) &&
                it->path().extension() == ".json")
                found.push_back(it->path().string());
        }
        if (ec) {
            std::fprintf(stderr, "mpcreport: cannot walk %s: %s\n",
                         dir.c_str(), ec.message().c_str());
            return 2;
        }
        std::sort(found.begin(), found.end());
        paths.insert(paths.end(), found.begin(), found.end());
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "mpcreport: no input files (--help for usage)\n");
        return 2;
    }

    std::vector<Artifact> artifacts;
    for (const std::string &path : paths) {
        std::string text;
        if (!loadFile(path, text)) {
            std::fprintf(stderr, "mpcreport: cannot open %s\n",
                         path.c_str());
            return 2;
        }
        Artifact a;
        a.path = path;
        if (!mpc::json::parse(text, a.root)) {
            std::fprintf(stderr, "mpcreport: %s: malformed JSON\n",
                         path.c_str());
            return 2;
        }
        a.kind = classify(a.root);
        if (a.kind.empty()) {
            std::fprintf(stderr,
                         "mpcreport: %s: unrecognized artifact shape; "
                         "skipping\n",
                         path.c_str());
            continue;
        }
        a.manifest = Manifest::fromJson(a.root.field("manifest"));
        if (a.kind == "samples")
            parseSamples(a);
        artifacts.push_back(std::move(a));
    }
    if (artifacts.empty()) {
        std::fprintf(stderr, "mpcreport: nothing to report\n");
        return 2;
    }

    if (g_markdown)
        std::printf("# mpcreport\n");
    reportManifests(artifacts);
    for (const Artifact &a : artifacts) {
        if (a.kind == "samples")
            reportSamples(a);
        else if (a.kind == "bench")
            reportBench(a);
        else if (a.kind == "model")
            reportModel(a);
        else if (a.kind == "tune")
            reportTune(a);
    }
    reportStore(artifacts);
    reportPairs(artifacts);
    return 0;
}
