/**
 * @file
 * Host-performance comparison of BENCH_<name>.json files.
 *
 * Usage:
 *   perfcmp [options] BASE.json[,BASE2.json,...] NEW.json[,NEW2.json,...]
 *
 * Each side is a comma-separated list of BENCH json files from repeated
 * runs of the same benchmark binary; per-label wall times are reduced
 * with the median, which is robust to one-off scheduling noise. Rows
 * present on both sides are compared (speedup = base / new; >1 means
 * the new build is faster); labels present on only one side are
 * reported explicitly as missing (base-only) or added (new-only).
 *
 * Options:
 *   --threshold <pct>     noise threshold for flagging rows (default 10)
 *   --fail-on-regression  exit 1 if any row regresses past the
 *                         threshold OR any base label is missing from
 *                         the new side (default: report only — intended
 *                         for CI jobs that warn without gating merges)
 *   --json <path>         also write the comparison as machine-readable
 *                         JSON (schema "perfcmp-v1": per-label medians,
 *                         ratios, verdicts) for CI archiving/trending
 *
 * The comparison engine lives in perfcmp_core.hh so the unit tests can
 * drive it directly.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tools/perfcmp_core.hh"

int
main(int argc, char **argv)
{
    using namespace mpc::perfcmp;

    double threshold_pct = 10.0;
    bool fail_on_regression = false;
    std::string json_path;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold" && i + 1 < argc) {
            threshold_pct = std::atof(argv[++i]);
        } else if (arg == "--fail-on-regression") {
            fail_on_regression = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: perfcmp [--threshold PCT] "
                        "[--fail-on-regression] [--json PATH] "
                        "BASE[,..] NEW[,..]\n");
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "perfcmp: expected BASE and NEW file "
                             "lists (--help for usage)\n");
        return 2;
    }

    std::map<std::string, double> base, next;
    if (!loadSide(positional[0], base) || !loadSide(positional[1], next))
        return 2;

    const CompareResult result = compare(base, next, threshold_pct);

    if (!json_path.empty()) {
        std::FILE *jf = std::fopen(json_path.c_str(), "w");
        if (jf == nullptr) {
            std::fprintf(stderr, "perfcmp: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        const std::string json = compareJson(result, threshold_pct);
        std::fwrite(json.data(), 1, json.size(), jf);
        std::fclose(jf);
    }

    std::printf("%-28s %12s %12s %9s\n", "bench", "base (s)", "new (s)",
                "speedup");
    std::printf("%-28s %12s %12s %9s\n", "-----", "--------", "-------",
                "-------");
    for (const CompareRow &row : result.rows) {
        const char *flag = "";
        if (row.regression)
            flag = "  <-- REGRESSION";
        else if (row.faster)
            flag = "  (faster)";
        std::printf("%-28s %12.6f %12.6f %8.2fx%s\n", row.label.c_str(),
                    row.baseSeconds, row.newSeconds, row.speedup, flag);
    }
    for (const std::string &label : result.missing)
        std::printf("%-28s %12s %12s %9s  <-- MISSING from new side\n",
                    label.c_str(), "-", "-", "-");
    for (const std::string &label : result.added)
        std::printf("%-28s %12s %12s %9s  (added: new side only)\n",
                    label.c_str(), "-", "-", "-");

    if (result.compared == 0) {
        std::fprintf(stderr, "perfcmp: no comparable rows\n");
        return 2;
    }
    std::printf("\n%d rows compared, geomean speedup %.2fx, "
                "%d regression(s) beyond %.0f%%",
                result.compared, result.geomean, result.regressions,
                threshold_pct);
    if (!result.missing.empty())
        std::printf(", %d label(s) missing",
                    static_cast<int>(result.missing.size()));
    if (!result.added.empty())
        std::printf(", %d label(s) added",
                    static_cast<int>(result.added.size()));
    std::printf("\n");

    const bool failing =
        result.regressions > 0 || !result.missing.empty();
    if (failing && !fail_on_regression)
        std::printf("(report-only mode: not failing; pass "
                    "--fail-on-regression to gate)\n");
    return fail_on_regression && failing ? 1 : 0;
}
