/**
 * @file
 * Host-performance comparison of BENCH_<name>.json files.
 *
 * Usage:
 *   perfcmp [options] BASE.json[,BASE2.json,...] NEW.json[,NEW2.json,...]
 *
 * Each side is a comma-separated list of BENCH json files from repeated
 * runs of the same benchmark binary; per-label wall times are reduced
 * with the median, which is robust to one-off scheduling noise. Rows
 * present on both sides are compared; speedup = base / new (>1 means
 * the new build is faster).
 *
 * Options:
 *   --threshold <pct>     noise threshold for flagging rows (default 10)
 *   --fail-on-regression  exit 1 if any row regresses past the
 *                         threshold (default: report only — intended
 *                         for CI jobs that warn without gating merges)
 *
 * The parser handles exactly the JSON bench_common.hh emits (flat
 * "runs" array with "label" and "wallSeconds" fields); it is not a
 * general JSON reader.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct Row
{
    std::string label;
    double wallSeconds = 0.0;
};

/** Extract the string value of "key" starting at or after @p from. */
bool
findString(const std::string &text, const std::string &key, size_t from,
           std::string &out, size_t &end)
{
    const std::string needle = "\"" + key + "\"";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return false;
    const size_t open = text.find('"', text.find(':', at));
    if (open == std::string::npos)
        return false;
    const size_t close = text.find('"', open + 1);
    if (close == std::string::npos)
        return false;
    out = text.substr(open + 1, close - open - 1);
    end = close + 1;
    return true;
}

/** Extract the numeric value of "key" starting at or after @p from. */
bool
findNumber(const std::string &text, const std::string &key, size_t from,
           double &out, size_t &end)
{
    const std::string needle = "\"" + key + "\"";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return false;
    const size_t colon = text.find(':', at);
    if (colon == std::string::npos)
        return false;
    char *stop = nullptr;
    out = std::strtod(text.c_str() + colon + 1, &stop);
    end = static_cast<size_t>(stop - text.c_str());
    return stop != text.c_str() + colon + 1;
}

/** Parse one BENCH json file into label -> wallSeconds. */
bool
parseBenchFile(const std::string &path, std::vector<Row> &rows)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "perfcmp: cannot open %s\n", path.c_str());
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    const size_t runs = text.find("\"runs\"");
    if (runs == std::string::npos) {
        std::fprintf(stderr, "perfcmp: %s: no \"runs\" array\n",
                     path.c_str());
        return false;
    }
    size_t pos = runs;
    for (;;) {
        Row row;
        size_t after_label = 0;
        if (!findString(text, "label", pos, row.label, after_label))
            break;
        size_t after_wall = 0;
        if (!findNumber(text, "wallSeconds", after_label, row.wallSeconds,
                        after_wall)) {
            std::fprintf(stderr,
                         "perfcmp: %s: run \"%s\" has no wallSeconds\n",
                         path.c_str(), row.label.c_str());
            return false;
        }
        rows.push_back(row);
        pos = after_wall;
    }
    if (rows.empty()) {
        std::fprintf(stderr, "perfcmp: %s: empty runs array\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> parts;
    std::string current;
    std::stringstream stream(arg);
    while (std::getline(stream, current, ','))
        if (!current.empty())
            parts.push_back(current);
    return parts;
}

/** Median wall time per label across a side's files. A label must be
 *  present in every file of the side to count. */
bool
loadSide(const std::string &arg, std::map<std::string, double> &medians)
{
    const auto files = splitCommas(arg);
    if (files.empty()) {
        std::fprintf(stderr, "perfcmp: empty file list '%s'\n",
                     arg.c_str());
        return false;
    }
    std::map<std::string, std::vector<double>> samples;
    for (const auto &file : files) {
        std::vector<Row> rows;
        if (!parseBenchFile(file, rows))
            return false;
        for (const auto &row : rows)
            samples[row.label].push_back(row.wallSeconds);
    }
    for (auto &[label, values] : samples) {
        if (values.size() != files.size())
            continue;   // label missing from some run: skip it
        std::sort(values.begin(), values.end());
        const size_t n = values.size();
        medians[label] = n % 2 == 1
                             ? values[n / 2]
                             : 0.5 * (values[n / 2 - 1] + values[n / 2]);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold_pct = 10.0;
    bool fail_on_regression = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold" && i + 1 < argc) {
            threshold_pct = std::atof(argv[++i]);
        } else if (arg == "--fail-on-regression") {
            fail_on_regression = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: perfcmp [--threshold PCT] "
                        "[--fail-on-regression] BASE[,..] NEW[,..]\n");
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "perfcmp: expected BASE and NEW file "
                             "lists (--help for usage)\n");
        return 2;
    }

    std::map<std::string, double> base, next;
    if (!loadSide(positional[0], base) || !loadSide(positional[1], next))
        return 2;

    std::printf("%-28s %12s %12s %9s\n", "bench", "base (s)", "new (s)",
                "speedup");
    std::printf("%-28s %12s %12s %9s\n", "-----", "--------", "-------",
                "-------");
    int compared = 0;
    int regressions = 0;
    double log_sum = 0.0;
    for (const auto &[label, base_s] : base) {
        const auto it = next.find(label);
        if (it == next.end())
            continue;
        const double new_s = it->second;
        if (base_s <= 0.0 || new_s <= 0.0)
            continue;   // sub-resolution rows carry no signal
        const double speedup = base_s / new_s;
        const char *flag = "";
        if (speedup < 1.0 - threshold_pct / 100.0) {
            flag = "  <-- REGRESSION";
            ++regressions;
        } else if (speedup > 1.0 + threshold_pct / 100.0) {
            flag = "  (faster)";
        }
        std::printf("%-28s %12.6f %12.6f %8.2fx%s\n", label.c_str(),
                    base_s, new_s, speedup, flag);
        log_sum += std::log(speedup);
        ++compared;
    }
    if (compared == 0) {
        std::fprintf(stderr, "perfcmp: no comparable rows\n");
        return 2;
    }
    std::printf("\n%d rows compared, geomean speedup %.2fx, "
                "%d regression(s) beyond %.0f%%\n",
                compared, std::exp(log_sum / compared), regressions,
                threshold_pct);
    if (regressions > 0 && !fail_on_regression)
        std::printf("(report-only mode: not failing; pass "
                    "--fail-on-regression to gate)\n");
    return fail_on_regression && regressions > 0 ? 1 : 0;
}
