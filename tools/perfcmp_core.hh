/**
 * @file
 * The comparison engine behind the perfcmp tool, header-only so the
 * unit tests (test_perfcmp.cc) can drive it without spawning the
 * binary.
 *
 * Each side of a comparison is a set of BENCH_<name>.json files from
 * repeated runs of the same benchmark binary; per-label wall times are
 * reduced with the median, which is robust to one-off scheduling
 * noise. compare() pairs the sides' labels and reports speedups — AND
 * the labels present on only one side, which earlier versions silently
 * dropped: a bench that stops being emitted is indistinguishable from
 * a bench that was always absent unless the comparison says so, and
 * under fail-on-regression a vanished bench must gate exactly like a
 * slow one.
 *
 * The parser handles exactly the JSON bench_common.hh emits (flat
 * "runs" array with "label" and "wallSeconds" fields); it is not a
 * general JSON reader.
 */

#ifndef MPC_TOOLS_PERFCMP_CORE_HH
#define MPC_TOOLS_PERFCMP_CORE_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace mpc::perfcmp
{

struct Row
{
    std::string label;
    double wallSeconds = 0.0;
};

/** Extract the string value of "key" starting at or after @p from. */
inline bool
findString(const std::string &text, const std::string &key, size_t from,
           std::string &out, size_t &end)
{
    const std::string needle = "\"" + key + "\"";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return false;
    const size_t open = text.find('"', text.find(':', at));
    if (open == std::string::npos)
        return false;
    const size_t close = text.find('"', open + 1);
    if (close == std::string::npos)
        return false;
    out = text.substr(open + 1, close - open - 1);
    end = close + 1;
    return true;
}

/** Extract the numeric value of "key" starting at or after @p from. */
inline bool
findNumber(const std::string &text, const std::string &key, size_t from,
           double &out, size_t &end)
{
    const std::string needle = "\"" + key + "\"";
    const size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return false;
    const size_t colon = text.find(':', at);
    if (colon == std::string::npos)
        return false;
    char *stop = nullptr;
    out = std::strtod(text.c_str() + colon + 1, &stop);
    end = static_cast<size_t>(stop - text.c_str());
    return stop != text.c_str() + colon + 1;
}

/** Parse BENCH json text into rows. @p where names the source in
 *  diagnostics (a path for files, a test name for inline text). */
inline bool
parseBenchText(const std::string &text, const std::string &where,
               std::vector<Row> &rows)
{
    const size_t runs = text.find("\"runs\"");
    if (runs == std::string::npos) {
        std::fprintf(stderr, "perfcmp: %s: no \"runs\" array\n",
                     where.c_str());
        return false;
    }
    size_t pos = runs;
    for (;;) {
        Row row;
        size_t after_label = 0;
        if (!findString(text, "label", pos, row.label, after_label))
            break;
        size_t after_wall = 0;
        if (!findNumber(text, "wallSeconds", after_label,
                        row.wallSeconds, after_wall)) {
            std::fprintf(stderr,
                         "perfcmp: %s: run \"%s\" has no wallSeconds\n",
                         where.c_str(), row.label.c_str());
            return false;
        }
        rows.push_back(row);
        pos = after_wall;
    }
    if (rows.empty()) {
        std::fprintf(stderr, "perfcmp: %s: empty runs array\n",
                     where.c_str());
        return false;
    }
    return true;
}

/** Parse one BENCH json file into label -> wallSeconds rows. */
inline bool
parseBenchFile(const std::string &path, std::vector<Row> &rows)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "perfcmp: cannot open %s\n", path.c_str());
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseBenchText(buffer.str(), path, rows);
}

inline std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> parts;
    std::string current;
    std::stringstream stream(arg);
    while (std::getline(stream, current, ','))
        if (!current.empty())
            parts.push_back(current);
    return parts;
}

/** Median wall time per label across a side's files. A label must be
 *  present in every file of the side to count. */
inline bool
loadSide(const std::string &arg, std::map<std::string, double> &medians)
{
    const auto files = splitCommas(arg);
    if (files.empty()) {
        std::fprintf(stderr, "perfcmp: empty file list '%s'\n",
                     arg.c_str());
        return false;
    }
    std::map<std::string, std::vector<double>> samples;
    for (const auto &file : files) {
        std::vector<Row> rows;
        if (!parseBenchFile(file, rows))
            return false;
        for (const auto &row : rows)
            samples[row.label].push_back(row.wallSeconds);
    }
    for (auto &[label, values] : samples) {
        if (values.size() != files.size())
            continue;   // label missing from some run: skip it
        std::sort(values.begin(), values.end());
        const size_t n = values.size();
        medians[label] = n % 2 == 1
                             ? values[n / 2]
                             : 0.5 * (values[n / 2 - 1] + values[n / 2]);
    }
    return true;
}

/** One compared label. */
struct CompareRow
{
    std::string label;
    double baseSeconds = 0.0;
    double newSeconds = 0.0;
    double speedup = 1.0;
    bool regression = false;
    bool faster = false;
};

/** The full pairing of two sides, missing/added labels included. */
struct CompareResult
{
    std::vector<CompareRow> rows;       ///< labels on both sides
    std::vector<std::string> missing;   ///< base-only (vanished)
    std::vector<std::string> added;     ///< new-only
    int compared = 0;
    int regressions = 0;
    double geomean = 1.0;
};

/**
 * Pair the sides' per-label medians. Labels present on both sides with
 * positive times are compared (sub-resolution rows carry no signal);
 * base-only labels land in missing, new-only in added. Under
 * fail-on-regression semantics a missing label is a failure: the
 * caller checks `regressions > 0 || !missing.empty()`.
 */
inline CompareResult
compare(const std::map<std::string, double> &base,
        const std::map<std::string, double> &next, double threshold_pct)
{
    CompareResult out;
    double log_sum = 0.0;
    for (const auto &[label, base_s] : base) {
        const auto it = next.find(label);
        if (it == next.end()) {
            out.missing.push_back(label);
            continue;
        }
        const double new_s = it->second;
        if (base_s <= 0.0 || new_s <= 0.0)
            continue;   // sub-resolution rows carry no signal
        CompareRow row;
        row.label = label;
        row.baseSeconds = base_s;
        row.newSeconds = new_s;
        row.speedup = base_s / new_s;
        row.regression = row.speedup < 1.0 - threshold_pct / 100.0;
        row.faster = row.speedup > 1.0 + threshold_pct / 100.0;
        out.regressions += row.regression ? 1 : 0;
        log_sum += std::log(row.speedup);
        ++out.compared;
        out.rows.push_back(std::move(row));
    }
    for (const auto &[label, new_s] : next)
        if (base.find(label) == base.end())
            out.added.push_back(label);
    if (out.compared > 0)
        out.geomean = std::exp(log_sum / out.compared);
    return out;
}

/** Append @p s as a quoted JSON string (local escape: this header is
 *  deliberately standalone, no mpc_common dependency). */
inline void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
}

/**
 * Machine-readable twin of the text report (schema "perfcmp-v1"):
 * per-label medians, speedup ratios, and verdicts ("ok" / "faster" /
 * "regression"), plus the missing/added label lists and the summary
 * aggregates — everything a CI job needs to archive or trend without
 * scraping the table.
 */
inline std::string
compareJson(const CompareResult &result, double threshold_pct)
{
    std::string out = "{\n  \"schema\": \"perfcmp-v1\",\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"thresholdPct\": %.6f,\n  \"compared\": %d,\n"
                  "  \"regressions\": %d,\n  \"geomean\": %.6f,\n",
                  threshold_pct, result.compared, result.regressions,
                  result.geomean);
    out += buf;
    out += "  \"rows\": [";
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const CompareRow &row = result.rows[i];
        out += i == 0 ? "\n    {\"label\": " : ",\n    {\"label\": ";
        appendJsonString(out, row.label);
        std::snprintf(buf, sizeof buf,
                      ", \"baseSeconds\": %.6f, \"newSeconds\": %.6f, "
                      "\"speedup\": %.6f, \"verdict\": \"%s\"}",
                      row.baseSeconds, row.newSeconds, row.speedup,
                      row.regression ? "regression"
                      : row.faster   ? "faster"
                                     : "ok");
        out += buf;
    }
    out += result.rows.empty() ? "],\n" : "\n  ],\n";
    const auto list = [&out](const char *name,
                             const std::vector<std::string> &labels,
                             bool last) {
        out += "  \"";
        out += name;
        out += "\": [";
        for (size_t i = 0; i < labels.size(); ++i) {
            out += i == 0 ? "" : ", ";
            appendJsonString(out, labels[i]);
        }
        out += last ? "]\n" : "],\n";
    };
    list("missing", result.missing, false);
    list("added", result.added, true);
    out += "}\n";
    return out;
}

} // namespace mpc::perfcmp

#endif // MPC_TOOLS_PERFCMP_CORE_HH
