/**
 * @file
 * mpcfarm command-line driver: the resumable experiment farm
 * (harness/farm.hh) over a job file of serialized RunSpec jobs.
 *
 * Usage:
 *   mpcfarm <jobfile|-> [options]         coordinator mode
 *   mpcfarm --worker --store DIR          worker mode (internal)
 *
 *   <jobfile>        one Job JSON per line ("mpc-job-v1"; see
 *                    harness/job.hh), blank lines and '#' comments
 *                    skipped; "-" reads the stream from stdin
 *   --store DIR      ResultStore directory (default: $MPC_STORE;
 *                    required one way or the other)
 *   --workers N      worker processes (default: MPC_JOBS, else
 *                    hardware concurrency divided by MPC_SHARDS so
 *                    sharded sims don't oversubscribe the host; an
 *                    explicit MPC_JOBS x MPC_SHARDS > hardware prints
 *                    a warning)
 *   --timeout SEC    per-job wall-clock timeout; overruns are killed
 *                    and count as a failed attempt (default: none)
 *   --retries N      re-dispatches after a failed attempt before the
 *                    job is quarantined (default 1)
 *   --max-jobs N     stop dispatching after N jobs have simulated and
 *                    report interrupted (kill-simulation test hook)
 *   --in-process     run jobs on threads instead of worker processes
 *
 * Every completed JobResult lands in the store under its content key,
 * so rerunning a killed or interrupted sweep resumes with zero
 * re-simulation. stdout carries only the deterministic per-job report
 * (byte-identical between a cold sweep and its warm rerun); store
 * hit/simulated/failed counters go to stderr.
 *
 * Exit status: 0 all jobs ok, 1 any failed, 130 interrupted.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/farm.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <jobfile|-> [--store DIR] [--workers N]\n"
                 "  [--timeout SEC] [--retries N] [--max-jobs N] "
                 "[--in-process]\n"
                 "   or: %s --worker --store DIR\n",
                 argv0, argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mpc;

    std::string job_path;
    std::string store_dir;
    if (const char *env = std::getenv("MPC_STORE"))
        store_dir = env;
    harness::FarmOptions opts;
    bool worker = false;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto next = [&]() -> const char * {
            if (a + 1 >= argc)
                usage(argv[0]);
            return argv[++a];
        };
        if (arg == "--worker")
            worker = true;
        else if (arg == "--store")
            store_dir = next();
        else if (arg == "--workers")
            opts.workers = std::atoi(next());
        else if (arg == "--timeout")
            opts.timeoutSeconds = std::atof(next());
        else if (arg == "--retries")
            opts.retries = std::atoi(next());
        else if (arg == "--max-jobs")
            opts.maxJobs = std::atoi(next());
        else if (arg == "--in-process")
            opts.inProcess = true;
        else if (arg == "-")
            job_path = arg;
        else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else if (job_path.empty())
            job_path = arg;
        else
            usage(argv[0]);
    }

    if (store_dir.empty()) {
        std::fprintf(stderr,
                     "mpcfarm: no store (--store DIR or MPC_STORE)\n");
        return 2;
    }
    if (worker) {
        if (!job_path.empty())
            usage(argv[0]);
        return harness::farmWorkerMain(store_dir);
    }
    if (job_path.empty())
        usage(argv[0]);

    std::vector<harness::Job> jobs;
    std::string error;
    if (job_path == "-") {
        if (!harness::parseJobStream(std::cin, jobs, error)) {
            std::fprintf(stderr, "mpcfarm: stdin: %s\n", error.c_str());
            return 2;
        }
    } else {
        std::ifstream in(job_path);
        if (!in) {
            std::fprintf(stderr, "mpcfarm: cannot open %s\n",
                         job_path.c_str());
            return 2;
        }
        if (!harness::parseJobStream(in, jobs, error)) {
            std::fprintf(stderr, "mpcfarm: %s: %s\n", job_path.c_str(),
                         error.c_str());
            return 2;
        }
    }
    if (jobs.empty()) {
        std::fprintf(stderr, "mpcfarm: %s: no jobs\n", job_path.c_str());
        return 2;
    }

    harness::ResultStore store(store_dir);
    const harness::FarmReport report =
        harness::runFarm(jobs, store, opts);

    // Deterministic report on stdout; store-state counters on stderr.
    std::fputs(report.toString(jobs).c_str(), stdout);
    std::fflush(stdout);
    std::fprintf(stderr, "mpcfarm: %d hit(s), %d simulated, %d failed\n",
                 report.hits, report.simulated, report.failed);
    if (report.interrupted)
        return 130;
    return report.failed > 0 ? 1 : 0;
}
